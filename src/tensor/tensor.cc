#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>

#include "tensor/storage_pool.h"
#include "util/string_util.h"

namespace armnet {

Tensor::Tensor(Shape shape) : shape_(std::move(shape)) {
  for (int64_t d : shape_.dims()) {
    ARMNET_CHECK_GE(d, 0) << "cannot allocate shape " << shape_.ToString();
  }
  storage_ = tensor_internal::AllocateStorage(
      static_cast<size_t>(shape_.numel()), /*zero=*/true);
}

Tensor Tensor::Uninitialized(Shape shape) {
  for (int64_t d : shape.dims()) {
    ARMNET_CHECK_GE(d, 0) << "cannot allocate shape " << shape.ToString();
  }
  Tensor t;
  t.shape_ = std::move(shape);
  t.storage_ = tensor_internal::AllocateStorage(
      static_cast<size_t>(t.shape_.numel()), /*zero=*/false);
  return t;
}

Tensor Tensor::Full(Shape shape, float value) {
  Tensor t(std::move(shape));
  t.Fill(value);
  return t;
}

Tensor Tensor::Scalar(float value) {
  Tensor t{Shape({})};
  (*t.storage_)[0] = value;
  return t;
}

Tensor Tensor::FromVector(Shape shape, std::vector<float> values) {
  ARMNET_CHECK_EQ(shape.numel(), static_cast<int64_t>(values.size()))
      << "FromVector: shape " << shape.ToString() << " does not match vector";
  Tensor t;
  t.storage_ = std::make_shared<std::vector<float>>(std::move(values));
  t.shape_ = std::move(shape);
  return t;
}

Tensor Tensor::Uniform(Shape shape, float lo, float hi, Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i) t[i] = rng.UniformF(lo, hi);
  return t;
}

Tensor Tensor::Normal(Shape shape, float mean, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  for (int64_t i = 0; i < t.numel(); ++i)
    t[i] = static_cast<float>(rng.Gaussian(mean, stddev));
  return t;
}

Tensor Tensor::Reshape(Shape shape) const {
  ARMNET_CHECK(defined());
  // Resolve a single -1 dimension.
  std::vector<int64_t> dims = shape.dims();
  int64_t known = 1;
  int infer = -1;
  for (int i = 0; i < static_cast<int>(dims.size()); ++i) {
    if (dims[static_cast<size_t>(i)] == -1) {
      ARMNET_CHECK_EQ(infer, -1) << "at most one -1 dimension";
      infer = i;
    } else {
      known *= dims[static_cast<size_t>(i)];
    }
  }
  if (infer >= 0) {
    ARMNET_CHECK(known > 0 && numel() % known == 0)
        << "cannot infer dimension for reshape of " << shape_.ToString();
    dims[static_cast<size_t>(infer)] = numel() / known;
  }
  Shape resolved{std::move(dims)};
  ARMNET_CHECK_EQ(resolved.numel(), numel())
      << "reshape " << shape_.ToString() << " -> " << resolved.ToString();
  Tensor view;
  view.storage_ = storage_;
  view.shape_ = std::move(resolved);
  view.offset_ = offset_;
  return view;
}

Tensor Tensor::ViewSlice(int64_t offset, Shape shape) const {
  ARMNET_CHECK(defined());
  ARMNET_CHECK_GE(offset, 0);
  ARMNET_CHECK_LE(offset_ + offset + shape.numel(),
                  static_cast<int64_t>(storage_->size()))
      << "ViewSlice [" << offset << ", +" << shape.numel()
      << ") escapes storage of " << storage_->size() << " elements";
  Tensor view;
  view.storage_ = storage_;
  view.shape_ = std::move(shape);
  view.offset_ = offset_ + offset;
  return view;
}

Tensor Tensor::Clone() const {
  if (!defined()) return Tensor();
  const size_t n = static_cast<size_t>(numel());
  Tensor copy;
  copy.storage_ = tensor_internal::AllocateStorage(n, /*zero=*/false);
  std::copy(data(), data() + n, copy.storage_->begin());
  copy.shape_ = shape_;
  return copy;
}

void Tensor::Fill(float value) {
  ARMNET_CHECK(defined());
  float* p = data();
  const int64_t n = numel();
  for (int64_t i = 0; i < n; ++i) p[i] = value;
}

bool Tensor::AllClose(const Tensor& other, float tolerance) const {
  if (shape_ != other.shape_) return false;
  for (int64_t i = 0; i < numel(); ++i) {
    if (std::abs((*this)[i] - other[i]) > tolerance) return false;
  }
  return true;
}

std::string Tensor::ToString(int64_t max_elements) const {
  if (!defined()) return "Tensor(undefined)";
  std::string s = "Tensor" + shape_.ToString() + " {";
  const int64_t n = std::min(numel(), max_elements);
  for (int64_t i = 0; i < n; ++i) {
    if (i > 0) s += ", ";
    s += StrFormat("%g", (*this)[i]);
  }
  if (n < numel()) s += ", ...";
  return s + "}";
}

int64_t Tensor::FlatIndex(std::initializer_list<int64_t> indices) const {
  ARMNET_DCHECK(defined());
  ARMNET_CHECK_EQ(static_cast<int>(indices.size()), rank());
  int64_t flat = 0;
  int i = 0;
  for (int64_t idx : indices) {
    const int64_t d = shape_.dim(i);
    if (idx < 0) idx += d;
    ARMNET_DCHECK(idx >= 0 && idx < d);
    flat = flat * d + idx;
    ++i;
  }
  ARMNET_DCHECK(flat >= 0 && flat < numel());
  return flat;
}

}  // namespace armnet
