// AVX2+FMA kernels. Compiled with -mavx2 -mfma (see CMakeLists.txt); callers
// must check SimdAvailable() before routing work here, which the dispatcher
// in kernels.cc guarantees.

#include <immintrin.h>

#include <cmath>

#include "tensor/half.h"
#include "tensor/kernels.h"

namespace armnet::kernels::simd {

namespace {

// Vectorized expf with Cephes-style polynomial, accurate to ~1 ulp over the
// range the models produce. Falls back to clamping for extreme inputs the
// same way scalar expf saturates.
inline __m256 Exp256(__m256 x) {
  const __m256 kExpHi = _mm256_set1_ps(88.3762626647950f);
  const __m256 kExpLo = _mm256_set1_ps(-88.3762626647949f);
  const __m256 kLog2E = _mm256_set1_ps(1.44269504088896341f);
  const __m256 kC1 = _mm256_set1_ps(0.693359375f);
  const __m256 kC2 = _mm256_set1_ps(-2.12194440e-4f);
  const __m256 kP0 = _mm256_set1_ps(1.9875691500e-4f);
  const __m256 kP1 = _mm256_set1_ps(1.3981999507e-3f);
  const __m256 kP2 = _mm256_set1_ps(8.3334519073e-3f);
  const __m256 kP3 = _mm256_set1_ps(4.1665795894e-2f);
  const __m256 kP4 = _mm256_set1_ps(1.6666665459e-1f);
  const __m256 kP5 = _mm256_set1_ps(5.0000001201e-1f);
  const __m256 kOne = _mm256_set1_ps(1.0f);

  x = _mm256_min_ps(x, kExpHi);
  x = _mm256_max_ps(x, kExpLo);

  // Express exp(x) as 2^n * exp(r) with r in [-ln2/2, ln2/2].
  __m256 fx = _mm256_fmadd_ps(x, kLog2E, _mm256_set1_ps(0.5f));
  fx = _mm256_floor_ps(fx);
  x = _mm256_fnmadd_ps(fx, kC1, x);
  x = _mm256_fnmadd_ps(fx, kC2, x);

  const __m256 x2 = _mm256_mul_ps(x, x);
  __m256 y = kP0;
  y = _mm256_fmadd_ps(y, x, kP1);
  y = _mm256_fmadd_ps(y, x, kP2);
  y = _mm256_fmadd_ps(y, x, kP3);
  y = _mm256_fmadd_ps(y, x, kP4);
  y = _mm256_fmadd_ps(y, x, kP5);
  y = _mm256_fmadd_ps(y, x2, _mm256_add_ps(x, kOne));

  // Scale by 2^n via exponent bit manipulation.
  const __m256i n = _mm256_cvtps_epi32(fx);
  const __m256i pow2n =
      _mm256_slli_epi32(_mm256_add_epi32(n, _mm256_set1_epi32(0x7f)), 23);
  return _mm256_mul_ps(y, _mm256_castsi256_ps(pow2n));
}

inline float HSum256(__m256 v) {
  __m128 lo = _mm256_castps256_ps128(v);
  __m128 hi = _mm256_extractf128_ps(v, 1);
  lo = _mm_add_ps(lo, hi);
  lo = _mm_hadd_ps(lo, lo);
  lo = _mm_hadd_ps(lo, lo);
  return _mm_cvtss_f32(lo);
}

}  // namespace

void VecAdd(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_add_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] + b[i];
}

void VecSub(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_sub_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] - b[i];
}

void VecMul(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] * b[i];
}

void VecDiv(const float* a, const float* b, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_div_ps(_mm256_loadu_ps(a + i),
                                            _mm256_loadu_ps(b + i)));
  }
  for (; i < n; ++i) out[i] = a[i] / b[i];
}

void VecScale(const float* a, float s, float* out, int64_t n) {
  const __m256 vs = _mm256_set1_ps(s);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, _mm256_mul_ps(_mm256_loadu_ps(a + i), vs));
  }
  for (; i < n; ++i) out[i] = a[i] * s;
}

void VecAxpy(float alpha, const float* x, float* y, int64_t n) {
  const __m256 va = _mm256_set1_ps(alpha);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < n; ++i) y[i] += alpha * x[i];
}

void VecExp(const float* a, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    _mm256_storeu_ps(out + i, Exp256(_mm256_loadu_ps(a + i)));
  }
  for (; i < n; ++i) out[i] = std::exp(a[i]);
}

float VecDot(const float* a, const float* b, int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i), acc);
  }
  float total = HSum256(acc);
  for (; i < n; ++i) total += a[i] * b[i];
  return total;
}

float VecSum(const float* a, int64_t n) {
  __m256 acc = _mm256_setzero_ps();
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    acc = _mm256_add_ps(acc, _mm256_loadu_ps(a + i));
  }
  float total = HSum256(acc);
  for (; i < n; ++i) total += a[i];
  return total;
}

void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float beta, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      int64_t j = 0;
      const __m256 z = _mm256_setzero_ps();
      for (; j + 8 <= n; j += 8) _mm256_storeu_ps(crow + j, z);
      for (; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      VecScale(crow, beta, crow, n);
    }
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      if (av == 0.0f) continue;
      const float* brow = b + p * n;
      const __m256 vav = _mm256_set1_ps(av);
      int64_t j = 0;
      for (; j + 8 <= n; j += 8) {
        _mm256_storeu_ps(
            crow + j, _mm256_fmadd_ps(vav, _mm256_loadu_ps(brow + j),
                                      _mm256_loadu_ps(crow + j)));
      }
      for (; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void DequantRowI8(const int8_t* src, float scale, float* out, int64_t n) {
  const __m256 vs = _mm256_set1_ps(scale);
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    // Sign-extend 8 int8 lanes to int32, convert to float, scale.
    const __m128i packed =
        _mm_loadl_epi64(reinterpret_cast<const __m128i*>(src + i));
    const __m256i wide = _mm256_cvtepi8_epi32(packed);
    _mm256_storeu_ps(out + i,
                     _mm256_mul_ps(_mm256_cvtepi32_ps(wide), vs));
  }
  for (; i < n; ++i) out[i] = static_cast<float>(src[i]) * scale;
}

void DequantRowF16(const uint16_t* src, float* out, int64_t n) {
  int64_t i = 0;
  for (; i + 8 <= n; i += 8) {
    const __m128i packed =
        _mm_loadu_si128(reinterpret_cast<const __m128i*>(src + i));
    _mm256_storeu_ps(out + i, _mm256_cvtph_ps(packed));
  }
  for (; i < n; ++i) out[i] = HalfToFloat(src[i]);
}

}  // namespace armnet::kernels::simd
