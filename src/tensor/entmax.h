#ifndef ARMNET_TENSOR_ENTMAX_H_
#define ARMNET_TENSOR_ENTMAX_H_

#include "tensor/tensor.h"

// Value-level α-entmax solvers over the last dimension (Peters, Niculae,
// Martins — ACL 2019). The differentiable wrapper lives in autograd/entmax.h;
// these tensor-layer kernels are shared by the autograd forward and the
// execution-plan VM (src/plan/), which keeps the two paths bit-identical.
//
//   * α = 1: closed-form softmax,
//   * α = 2: exact sort-based sparsemax (Martins & Astudillo 2016),
//   * α = 1.5: exact sort-based closed form,
//   * other α > 1: bisection on the threshold τ, then renormalized.

namespace armnet::tmath {

// α-entmax over the last dimension. Requires alpha >= 1.
Tensor EntmaxLastDim(const Tensor& z, float alpha);
// Destination-passing form; `out` must match `z`'s shape and must not alias
// it (row solvers stash intermediate state in the output buffer).
void EntmaxLastDimOut(const Tensor& z, float alpha, Tensor& out);

// Exact sparsemax (α = 2) over the last dimension.
Tensor SparsemaxLastDim(const Tensor& z);

// Exact α = 1.5 entmax over the last dimension (sort-based closed form).
Tensor Entmax15ExactLastDim(const Tensor& z);

}  // namespace armnet::tmath

#endif  // ARMNET_TENSOR_ENTMAX_H_
