#ifndef ARMNET_TENSOR_KERNELS_H_
#define ARMNET_TENSOR_KERNELS_H_

#include <cstdint>

#include "tensor/backend.h"

// Low-level contiguous-array kernels with two implementations each: a scalar
// reference (kernels_scalar.cc, vectorization disabled) and an AVX2+FMA
// version (kernels_simd.cc). The dispatching wrappers in namespace
// armnet::kernels select by the active Backend.
//
// Only the kernels that dominate model runtime are dualized; everything else
// in tensor_ops.cc is plain portable C++.

namespace armnet::kernels {

namespace scalar {
void VecAdd(const float* a, const float* b, float* out, int64_t n);
void VecSub(const float* a, const float* b, float* out, int64_t n);
void VecMul(const float* a, const float* b, float* out, int64_t n);
void VecDiv(const float* a, const float* b, float* out, int64_t n);
void VecScale(const float* a, float s, float* out, int64_t n);
void VecAxpy(float alpha, const float* x, float* y, int64_t n);
void VecExp(const float* a, float* out, int64_t n);
float VecDot(const float* a, const float* b, int64_t n);
float VecSum(const float* a, int64_t n);
// C[M,N] = beta * C + A[M,K] * B[K,N] (all row-major, contiguous).
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float beta, float* c);
// Dequantize one embedding row: out[i] = src[i] * scale (symmetric int8).
void DequantRowI8(const int8_t* src, float scale, float* out, int64_t n);
// Dequantize one fp16 row: out[i] = HalfToFloat(src[i]).
void DequantRowF16(const uint16_t* src, float* out, int64_t n);
}  // namespace scalar

namespace simd {
void VecAdd(const float* a, const float* b, float* out, int64_t n);
void VecSub(const float* a, const float* b, float* out, int64_t n);
void VecMul(const float* a, const float* b, float* out, int64_t n);
void VecDiv(const float* a, const float* b, float* out, int64_t n);
void VecScale(const float* a, float s, float* out, int64_t n);
void VecAxpy(float alpha, const float* x, float* y, int64_t n);
void VecExp(const float* a, float* out, int64_t n);
float VecDot(const float* a, const float* b, int64_t n);
float VecSum(const float* a, int64_t n);
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float beta, float* c);
void DequantRowI8(const int8_t* src, float scale, float* out, int64_t n);
// Requires F16C (dispatcher guards on F16cAvailable()).
void DequantRowF16(const uint16_t* src, float* out, int64_t n);
}  // namespace simd

// Dispatching wrappers.
void VecAdd(const float* a, const float* b, float* out, int64_t n);
void VecSub(const float* a, const float* b, float* out, int64_t n);
void VecMul(const float* a, const float* b, float* out, int64_t n);
void VecDiv(const float* a, const float* b, float* out, int64_t n);
void VecScale(const float* a, float s, float* out, int64_t n);
void VecAxpy(float alpha, const float* x, float* y, int64_t n);
void VecExp(const float* a, float* out, int64_t n);
float VecDot(const float* a, const float* b, int64_t n);
float VecSum(const float* a, int64_t n);
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float beta, float* c);
void DequantRowI8(const int8_t* src, float scale, float* out, int64_t n);
void DequantRowF16(const uint16_t* src, float* out, int64_t n);

}  // namespace armnet::kernels

#endif  // ARMNET_TENSOR_KERNELS_H_
