#include "tensor/kernels.h"

#include <atomic>

#include "util/check.h"
#include "util/profiler.h"

namespace armnet {

namespace {

std::atomic<Backend>& ActiveBackend() {
  static std::atomic<Backend> backend{SimdAvailable() ? Backend::kSimd
                                                      : Backend::kScalar};
  return backend;
}

}  // namespace

bool SimdAvailable() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

bool F16cAvailable() {
  return SimdAvailable() && __builtin_cpu_supports("f16c");
}

Backend GetBackend() { return ActiveBackend().load(std::memory_order_relaxed); }

void SetBackend(Backend backend) {
  if (backend == Backend::kSimd) {
    ARMNET_CHECK(SimdAvailable()) << "AVX2+FMA not available on this CPU";
  }
  ActiveBackend().store(backend, std::memory_order_relaxed);
}

const char* BackendName(Backend backend) {
  switch (backend) {
    case Backend::kScalar:
      return "scalar";
    case Backend::kSimd:
      return "simd";
  }
  return "unknown";
}

namespace kernels {

#define ARMNET_DISPATCH(fn, ...)                \
  if (GetBackend() == Backend::kSimd) {         \
    return simd::fn(__VA_ARGS__);               \
  }                                             \
  return scalar::fn(__VA_ARGS__)

// Every dispatcher DCHECKs its pointer/size preconditions before entering the
// raw-pointer implementations; the scalar/simd bodies themselves stay
// check-free so the backend comparison measures arithmetic only. Null
// pointers are tolerated for empty ranges (a zero-element tensor has no
// storage to point at).
#define ARMNET_KERNEL_PRECONDITIONS2(a, b, n)                     \
  ARMNET_DCHECK_GE(n, 0);                                         \
  ARMNET_DCHECK((n) == 0 || ((a) != nullptr && (b) != nullptr))

#define ARMNET_KERNEL_PRECONDITIONS3(a, b, out, n) \
  ARMNET_KERNEL_PRECONDITIONS2(a, b, n);           \
  ARMNET_DCHECK((n) == 0 || (out) != nullptr)

void VecAdd(const float* a, const float* b, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS3(a, b, out, n);
  ARMNET_PROFILE_COUNT("kernel/VecAdd", 1);
  ARMNET_DISPATCH(VecAdd, a, b, out, n);
}
void VecSub(const float* a, const float* b, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS3(a, b, out, n);
  ARMNET_PROFILE_COUNT("kernel/VecSub", 1);
  ARMNET_DISPATCH(VecSub, a, b, out, n);
}
void VecMul(const float* a, const float* b, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS3(a, b, out, n);
  ARMNET_PROFILE_COUNT("kernel/VecMul", 1);
  ARMNET_DISPATCH(VecMul, a, b, out, n);
}
void VecDiv(const float* a, const float* b, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS3(a, b, out, n);
  ARMNET_PROFILE_COUNT("kernel/VecDiv", 1);
  ARMNET_DISPATCH(VecDiv, a, b, out, n);
}
void VecScale(const float* a, float s, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS2(a, out, n);
  ARMNET_PROFILE_COUNT("kernel/VecScale", 1);
  ARMNET_DISPATCH(VecScale, a, s, out, n);
}
void VecAxpy(float alpha, const float* x, float* y, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS2(x, y, n);
  ARMNET_PROFILE_COUNT("kernel/VecAxpy", 1);
  ARMNET_DISPATCH(VecAxpy, alpha, x, y, n);
}
void VecExp(const float* a, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS2(a, out, n);
  ARMNET_PROFILE_COUNT("kernel/VecExp", 1);
  ARMNET_DISPATCH(VecExp, a, out, n);
}
float VecDot(const float* a, const float* b, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS2(a, b, n);
  ARMNET_PROFILE_COUNT("kernel/VecDot", 1);
  ARMNET_DISPATCH(VecDot, a, b, n);
}
float VecSum(const float* a, int64_t n) {
  ARMNET_DCHECK_GE(n, 0);
  ARMNET_DCHECK(n == 0 || a != nullptr);
  ARMNET_PROFILE_COUNT("kernel/VecSum", 1);
  ARMNET_DISPATCH(VecSum, a, n);
}
void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float beta, float* c) {
  ARMNET_DCHECK(m >= 0 && n >= 0 && k >= 0);
  ARMNET_DCHECK(m == 0 || n == 0 || c != nullptr);
  ARMNET_DCHECK(m == 0 || n == 0 || k == 0 ||
                (a != nullptr && b != nullptr));
  ARMNET_PROFILE_COUNT("kernel/Gemm", 1);
  ARMNET_DISPATCH(Gemm, m, n, k, a, b, beta, c);
}
void DequantRowI8(const int8_t* src, float scale, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS2(src, out, n);
  ARMNET_PROFILE_COUNT("kernel/DequantRowI8", 1);
  ARMNET_DISPATCH(DequantRowI8, src, scale, out, n);
}
void DequantRowF16(const uint16_t* src, float* out, int64_t n) {
  ARMNET_KERNEL_PRECONDITIONS2(src, out, n);
  ARMNET_PROFILE_COUNT("kernel/DequantRowF16", 1);
  // The fp16 SIMD path needs F16C on top of AVX2+FMA; fall back to the
  // portable bit-twiddle conversion when the CPU lacks it.
  if (GetBackend() == Backend::kSimd && F16cAvailable()) {
    return simd::DequantRowF16(src, out, n);
  }
  return scalar::DequantRowF16(src, out, n);
}

#undef ARMNET_DISPATCH
#undef ARMNET_KERNEL_PRECONDITIONS2
#undef ARMNET_KERNEL_PRECONDITIONS3

}  // namespace kernels
}  // namespace armnet
