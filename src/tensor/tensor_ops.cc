#include "tensor/tensor_ops.h"

#include <algorithm>
#include <cmath>

#include "tensor/kernels.h"

namespace armnet::tmath {

namespace {

// Strides for `shape` when broadcast to `out`, with stride 0 on broadcast
// dims. Shapes are right-aligned.
std::vector<int64_t> BroadcastStrides(const Shape& shape, const Shape& out) {
  const int out_rank = out.rank();
  const int rank = shape.rank();
  std::vector<int64_t> strides(static_cast<size_t>(out_rank), 0);
  const std::vector<int64_t> own = shape.Strides();
  for (int i = 0; i < rank; ++i) {
    const int oi = out_rank - 1 - i;
    const int si = rank - 1 - i;
    const int64_t dim = shape.dim(si);
    if (dim == out.dim(oi)) {
      strides[static_cast<size_t>(oi)] = own[static_cast<size_t>(si)];
    } else {
      ARMNET_CHECK_EQ(dim, 1) << "broadcast mismatch: " << shape.ToString()
                              << " vs " << out.ToString();
      strides[static_cast<size_t>(oi)] = 0;
    }
  }
  return strides;
}

// Largest flat offset an odometer walk over `shape` can reach with the given
// per-dimension strides. Used to DCHECK that broadcast/permuted stride math
// stays inside the source buffer before entering a raw-pointer loop.
[[maybe_unused]] int64_t MaxOffset(const Shape& shape,
                                   const std::vector<int64_t>& strides) {
  int64_t off = 0;
  for (int d = 0; d < shape.rank(); ++d) {
    if (shape.dim(d) > 0) off += (shape.dim(d) - 1) * strides[static_cast<size_t>(d)];
  }
  return off;
}

// Generic broadcasting binary loop into a preshaped destination. Walks the
// output in row-major order with an odometer, maintaining input offsets
// incrementally. An input whose shape equals the output shape may alias
// `out`: its read offset then tracks the write index exactly, so each
// element is read before it is overwritten.
template <typename Fn>
void BroadcastBinaryOut(const Tensor& a, const Tensor& b, Tensor& out,
                        Fn fn) {
  const Shape& out_shape = out.shape();
  ARMNET_DCHECK(Shape::Broadcast(a.shape(), b.shape()) == out_shape);
  const int64_t n = out.numel();
  if (n == 0) return;

  // Fast path: identical shapes, plain contiguous walk.
  if (a.shape() == b.shape()) {
    const float* pa = a.data();
    const float* pb = b.data();
    float* po = out.data();
    for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i], pb[i]);
    return;
  }

  const int rank = out_shape.rank();
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), out_shape);
  const std::vector<int64_t> sb = BroadcastStrides(b.shape(), out_shape);
  ARMNET_DCHECK_LT(MaxOffset(out_shape, sa), a.numel());
  ARMNET_DCHECK_LT(MaxOffset(out_shape, sb), b.numel());
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out.data();
  int64_t offset_a = 0;
  int64_t offset_b = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = fn(pa[offset_a], pb[offset_b]);
    // Odometer increment from the last dimension.
    for (int d = rank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      index[ud]++;
      offset_a += sa[ud];
      offset_b += sb[ud];
      if (index[ud] < out_shape.dim(d)) break;
      // Carry: rewind this dimension.
      offset_a -= sa[ud] * out_shape.dim(d);
      offset_b -= sb[ud] * out_shape.dim(d);
      index[ud] = 0;
    }
  }
}

template <typename Fn>
Tensor BroadcastBinary(const Tensor& a, const Tensor& b, Fn fn) {
  Tensor out{Shape::Broadcast(a.shape(), b.shape())};
  BroadcastBinaryOut(a, b, out, fn);
  return out;
}

template <typename Fn>
void UnaryOut(const Tensor& a, Tensor& out, Fn fn) {
  ARMNET_DCHECK(a.shape() == out.shape());
  const float* pa = a.data();
  float* po = out.data();
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) po[i] = fn(pa[i]);
}

template <typename Fn>
Tensor Unary(const Tensor& a, Fn fn) {
  Tensor out(a.shape());
  UnaryOut(a, out, fn);
  return out;
}

}  // namespace

void AddOut(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.shape() == b.shape()) {
    ARMNET_DCHECK(out.shape() == a.shape());
    kernels::VecAdd(a.data(), b.data(), out.data(), a.numel());
    return;
  }
  BroadcastBinaryOut(a, b, out, [](float x, float y) { return x + y; });
}

Tensor Add(const Tensor& a, const Tensor& b) {
  Tensor out{Shape::Broadcast(a.shape(), b.shape())};
  AddOut(a, b, out);
  return out;
}

void SubOut(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.shape() == b.shape()) {
    ARMNET_DCHECK(out.shape() == a.shape());
    kernels::VecSub(a.data(), b.data(), out.data(), a.numel());
    return;
  }
  BroadcastBinaryOut(a, b, out, [](float x, float y) { return x - y; });
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  Tensor out{Shape::Broadcast(a.shape(), b.shape())};
  SubOut(a, b, out);
  return out;
}

void MulOut(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.shape() == b.shape()) {
    ARMNET_DCHECK(out.shape() == a.shape());
    kernels::VecMul(a.data(), b.data(), out.data(), a.numel());
    return;
  }
  BroadcastBinaryOut(a, b, out, [](float x, float y) { return x * y; });
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  Tensor out{Shape::Broadcast(a.shape(), b.shape())};
  MulOut(a, b, out);
  return out;
}

void DivOut(const Tensor& a, const Tensor& b, Tensor& out) {
  if (a.shape() == b.shape()) {
    ARMNET_DCHECK(out.shape() == a.shape());
    kernels::VecDiv(a.data(), b.data(), out.data(), a.numel());
    return;
  }
  BroadcastBinaryOut(a, b, out, [](float x, float y) { return x / y; });
}

Tensor Div(const Tensor& a, const Tensor& b) {
  Tensor out{Shape::Broadcast(a.shape(), b.shape())};
  DivOut(a, b, out);
  return out;
}

Tensor Maximum(const Tensor& a, const Tensor& b) {
  return BroadcastBinary(a, b, [](float x, float y) { return std::max(x, y); });
}

void AddScalarOut(const Tensor& a, float s, Tensor& out) {
  UnaryOut(a, out, [s](float x) { return x + s; });
}

Tensor AddScalar(const Tensor& a, float s) {
  return Unary(a, [s](float x) { return x + s; });
}

void MulScalarOut(const Tensor& a, float s, Tensor& out) {
  ARMNET_DCHECK(a.shape() == out.shape());
  kernels::VecScale(a.data(), s, out.data(), a.numel());
}

Tensor MulScalar(const Tensor& a, float s) {
  Tensor out(a.shape());
  MulScalarOut(a, s, out);
  return out;
}

void PowScalarOut(const Tensor& a, float p, Tensor& out) {
  UnaryOut(a, out, [p](float x) { return std::pow(x, p); });
}

Tensor PowScalar(const Tensor& a, float p) {
  return Unary(a, [p](float x) { return std::pow(x, p); });
}

Tensor Neg(const Tensor& a) {
  return Unary(a, [](float x) { return -x; });
}

void ExpOut(const Tensor& a, Tensor& out) {
  ARMNET_DCHECK(a.shape() == out.shape());
  kernels::VecExp(a.data(), out.data(), a.numel());
}

Tensor Exp(const Tensor& a) {
  Tensor out(a.shape());
  ExpOut(a, out);
  return out;
}

void LogOut(const Tensor& a, Tensor& out) {
  UnaryOut(a, out, [](float x) { return std::log(x); });
}

Tensor Log(const Tensor& a) {
  return Unary(a, [](float x) { return std::log(x); });
}

Tensor Sqrt(const Tensor& a) {
  return Unary(a, [](float x) { return std::sqrt(x); });
}

void AbsOut(const Tensor& a, Tensor& out) {
  UnaryOut(a, out, [](float x) { return std::abs(x); });
}

Tensor Abs(const Tensor& a) {
  return Unary(a, [](float x) { return std::abs(x); });
}

Tensor Sigmoid(const Tensor& a) {
  return Unary(a, [](float x) {
    // Stable in both tails.
    if (x >= 0) {
      const float z = std::exp(-x);
      return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
  });
}

Tensor Tanh(const Tensor& a) {
  return Unary(a, [](float x) { return std::tanh(x); });
}

void ReluOut(const Tensor& a, Tensor& out) {
  UnaryOut(a, out, [](float x) { return x > 0 ? x : 0.0f; });
}

Tensor Relu(const Tensor& a) {
  return Unary(a, [](float x) { return x > 0 ? x : 0.0f; });
}

void LeakyReluOut(const Tensor& a, float slope, Tensor& out) {
  UnaryOut(a, out, [slope](float x) { return x > 0 ? x : slope * x; });
}

void ClampMinOut(const Tensor& a, float lo, Tensor& out) {
  UnaryOut(a, out, [lo](float x) { return x < lo ? lo : x; });
}

Tensor ClampMin(const Tensor& a, float lo) {
  return Unary(a, [lo](float x) { return x < lo ? lo : x; });
}

Tensor Clamp(const Tensor& a, float lo, float hi) {
  return Unary(a, [lo, hi](float x) { return std::clamp(x, lo, hi); });
}

void SquareOut(const Tensor& a, Tensor& out) {
  // Matches the autograd Square forward, which is Mul(a, a): same kernel,
  // same bits.
  ARMNET_DCHECK(a.shape() == out.shape());
  kernels::VecMul(a.data(), a.data(), out.data(), a.numel());
}

void MatMulOut(const Tensor& a, const Tensor& b, Tensor& out) {
  ARMNET_CHECK_GE(a.rank(), 2) << "MatMul lhs must be at least rank 2";
  ARMNET_CHECK_GE(b.rank(), 2) << "MatMul rhs must be at least rank 2";
  const int64_t m = a.dim(-2);
  const int64_t k = a.dim(-1);
  const int64_t k2 = b.dim(-2);
  const int64_t n = b.dim(-1);
  ARMNET_CHECK_EQ(k, k2) << "MatMul inner dims: " << a.shape().ToString()
                         << " x " << b.shape().ToString();

  // Batch shapes are everything except the last two dims.
  auto batch_of = [](const Shape& s) {
    std::vector<int64_t> dims(s.dims().begin(), s.dims().end() - 2);
    return Shape(std::move(dims));
  };
  const Shape batch_a = batch_of(a.shape());
  const Shape batch_b = batch_of(b.shape());
  const Shape batch = Shape::Broadcast(batch_a, batch_b);

  ARMNET_DCHECK(out.dim(-2) == m && out.dim(-1) == n &&
                batch_of(out.shape()) == batch)
      << "MatMulOut destination shape " << out.shape().ToString();

  const int64_t batches = batch.numel();
  if (batches == 0 || m == 0 || n == 0) return;

  // Per-batch strides (in matrices) with 0 on broadcast dims.
  const std::vector<int64_t> sa = BroadcastStrides(batch_a, batch);
  const std::vector<int64_t> sb = BroadcastStrides(batch_b, batch);
  ARMNET_DCHECK_LE((MaxOffset(batch, sa) + 1) * m * k, a.numel());
  ARMNET_DCHECK_LE((MaxOffset(batch, sb) + 1) * k * n, b.numel());
  const int brank = batch.rank();
  std::vector<int64_t> index(static_cast<size_t>(brank), 0);
  int64_t off_a = 0;
  int64_t off_b = 0;
  const int64_t mat_a = m * k;
  const int64_t mat_b = k * n;
  const int64_t mat_o = m * n;
  for (int64_t bi = 0; bi < batches; ++bi) {
    kernels::Gemm(m, n, k, a.data() + off_a * mat_a, b.data() + off_b * mat_b,
                  0.0f, out.data() + bi * mat_o);
    for (int d = brank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      index[ud]++;
      off_a += sa[ud];
      off_b += sb[ud];
      if (index[ud] < batch.dim(d)) break;
      off_a -= sa[ud] * batch.dim(d);
      off_b -= sb[ud] * batch.dim(d);
      index[ud] = 0;
    }
  }
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  ARMNET_CHECK_GE(a.rank(), 2) << "MatMul lhs must be at least rank 2";
  ARMNET_CHECK_GE(b.rank(), 2) << "MatMul rhs must be at least rank 2";
  auto batch_of = [](const Shape& s) {
    std::vector<int64_t> dims(s.dims().begin(), s.dims().end() - 2);
    return Shape(std::move(dims));
  };
  const Shape batch =
      Shape::Broadcast(batch_of(a.shape()), batch_of(b.shape()));
  std::vector<int64_t> out_dims = batch.dims();
  out_dims.push_back(a.dim(-2));
  out_dims.push_back(b.dim(-1));
  Tensor out{Shape(out_dims)};
  MatMulOut(a, b, out);
  return out;
}

void TransposeOut(const Tensor& a, int dim0, int dim1, Tensor& out) {
  const int rank = a.rank();
  if (dim0 < 0) dim0 += rank;
  if (dim1 < 0) dim1 += rank;
  ARMNET_CHECK(dim0 >= 0 && dim0 < rank && dim1 >= 0 && dim1 < rank);
  if (dim0 == dim1) {
    ARMNET_DCHECK(out.shape() == a.shape());
    std::copy(a.data(), a.data() + a.numel(), out.data());
    return;
  }

  std::vector<int64_t> out_dims = a.shape().dims();
  std::swap(out_dims[static_cast<size_t>(dim0)],
            out_dims[static_cast<size_t>(dim1)]);
  ARMNET_DCHECK(out.shape() == Shape(out_dims));

  // Input strides permuted into output order.
  std::vector<int64_t> in_strides = a.shape().Strides();
  std::swap(in_strides[static_cast<size_t>(dim0)],
            in_strides[static_cast<size_t>(dim1)]);

  const int64_t n = out.numel();
  ARMNET_DCHECK(n == 0 || MaxOffset(out.shape(), in_strides) < a.numel());
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* pa = a.data();
  float* po = out.data();
  int64_t off = 0;
  for (int64_t i = 0; i < n; ++i) {
    po[i] = pa[off];
    for (int d = rank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      index[ud]++;
      off += in_strides[ud];
      if (index[ud] < out.dim(d)) break;
      off -= in_strides[ud] * out.dim(d);
      index[ud] = 0;
    }
  }
}

Tensor Transpose(const Tensor& a, int dim0, int dim1) {
  const int rank = a.rank();
  if (dim0 < 0) dim0 += rank;
  if (dim1 < 0) dim1 += rank;
  ARMNET_CHECK(dim0 >= 0 && dim0 < rank && dim1 >= 0 && dim1 < rank);
  if (dim0 == dim1) return a.Clone();
  std::vector<int64_t> out_dims = a.shape().dims();
  std::swap(out_dims[static_cast<size_t>(dim0)],
            out_dims[static_cast<size_t>(dim1)]);
  Tensor out{Shape(out_dims)};
  TransposeOut(a, dim0, dim1, out);
  return out;
}

void SumAllOut(const Tensor& a, Tensor& out) {
  ARMNET_DCHECK_EQ(out.numel(), 1);
  out.data()[0] = kernels::VecSum(a.data(), a.numel());
}

Tensor SumAll(const Tensor& a) {
  return Tensor::Scalar(kernels::VecSum(a.data(), a.numel()));
}

void SumOut(const Tensor& a, int axis, bool keepdim, Tensor& out) {
  const int rank = a.rank();
  if (axis < 0) axis += rank;
  ARMNET_CHECK(axis >= 0 && axis < rank);

  int64_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= a.dim(d);
  const int64_t reduce = a.dim(axis);
  int64_t inner = 1;
  for (int d = axis + 1; d < rank; ++d) inner *= a.dim(d);
  (void)keepdim;  // only affects the out shape, which the caller supplies
  ARMNET_DCHECK_EQ(outer * inner, out.numel());

  ARMNET_DCHECK_EQ(outer * reduce * inner, a.numel());
  const float* pa = a.data();
  float* po = out.data();
  // The reduction accumulates, so the destination window must start at zero
  // (the allocating form gets this from the zero-filled constructor).
  std::fill(po, po + out.numel(), 0.0f);
  for (int64_t o = 0; o < outer; ++o) {
    for (int64_t r = 0; r < reduce; ++r) {
      const float* src = pa + (o * reduce + r) * inner;
      float* dst = po + o * inner;
      kernels::VecAxpy(1.0f, src, dst, inner);
    }
  }
}

Tensor Sum(const Tensor& a, int axis, bool keepdim) {
  const int rank = a.rank();
  int resolved = axis;
  if (resolved < 0) resolved += rank;
  ARMNET_CHECK(resolved >= 0 && resolved < rank);
  std::vector<int64_t> out_dims;
  for (int d = 0; d < rank; ++d) {
    if (d == resolved) {
      if (keepdim) out_dims.push_back(1);
    } else {
      out_dims.push_back(a.dim(d));
    }
  }
  Tensor out{Shape(out_dims)};
  SumOut(a, resolved, keepdim, out);
  return out;
}

Tensor Mean(const Tensor& a, int axis, bool keepdim) {
  const int rank = a.rank();
  const int resolved = axis < 0 ? axis + rank : axis;
  const int64_t n = a.dim(resolved);
  ARMNET_CHECK_GT(n, 0);
  return MulScalar(Sum(a, axis, keepdim), 1.0f / static_cast<float>(n));
}

Tensor SumTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a.Clone();
  ARMNET_CHECK(Shape::BroadcastableTo(target, a.shape()))
      << "SumTo: " << a.shape().ToString() << " -> " << target.ToString();
  Tensor out(target);
  const int rank = a.rank();
  const std::vector<int64_t> so = BroadcastStrides(target, a.shape());
  ARMNET_DCHECK(a.numel() == 0 || MaxOffset(a.shape(), so) < out.numel());
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* pa = a.data();
  float* po = out.data();
  int64_t off = 0;
  const int64_t n = a.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[off] += pa[i];
    for (int d = rank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      index[ud]++;
      off += so[ud];
      if (index[ud] < a.dim(d)) break;
      off -= so[ud] * a.dim(d);
      index[ud] = 0;
    }
  }
  return out;
}

Tensor BroadcastTo(const Tensor& a, const Shape& target) {
  if (a.shape() == target) return a.Clone();
  ARMNET_CHECK(Shape::BroadcastableTo(a.shape(), target))
      << "BroadcastTo: " << a.shape().ToString() << " -> "
      << target.ToString();
  Tensor out(target);
  const int rank = target.rank();
  const std::vector<int64_t> sa = BroadcastStrides(a.shape(), target);
  ARMNET_DCHECK(out.numel() == 0 || MaxOffset(target, sa) < a.numel());
  std::vector<int64_t> index(static_cast<size_t>(rank), 0);
  const float* pa = a.data();
  float* po = out.data();
  int64_t off = 0;
  const int64_t n = out.numel();
  for (int64_t i = 0; i < n; ++i) {
    po[i] = pa[off];
    for (int d = rank - 1; d >= 0; --d) {
      const size_t ud = static_cast<size_t>(d);
      index[ud]++;
      off += sa[ud];
      if (index[ud] < target.dim(d)) break;
      off -= sa[ud] * target.dim(d);
      index[ud] = 0;
    }
  }
  return out;
}

void ConcatOut(const std::vector<const Tensor*>& parts, int axis,
               Tensor& out) {
  ARMNET_CHECK(!parts.empty());
  const int rank = parts.front()->rank();
  if (axis < 0) axis += rank;
  ARMNET_CHECK(axis >= 0 && axis < rank);

  int64_t total_axis = 0;
  for (const Tensor* p : parts) {
    ARMNET_CHECK_EQ(p->rank(), rank);
    for (int d = 0; d < rank; ++d) {
      if (d != axis) {
        ARMNET_CHECK_EQ(p->dim(d), parts.front()->dim(d))
            << "Concat: mismatched non-axis dimension " << d;
      }
    }
    total_axis += p->dim(axis);
  }
  ARMNET_DCHECK_EQ(out.dim(axis), total_axis);

  int64_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= out.dim(d);
  int64_t inner = 1;
  for (int d = axis + 1; d < rank; ++d) inner *= out.dim(d);

  int64_t axis_offset = 0;
  for (const Tensor* p : parts) {
    const int64_t p_axis = p->dim(axis);
    for (int64_t o = 0; o < outer; ++o) {
      const float* src = p->data() + o * p_axis * inner;
      float* dst = out.data() + (o * total_axis + axis_offset) * inner;
      std::copy(src, src + p_axis * inner, dst);
    }
    axis_offset += p_axis;
  }
}

Tensor Concat(const std::vector<Tensor>& parts, int axis) {
  ARMNET_CHECK(!parts.empty());
  const int rank = parts.front().rank();
  int resolved = axis;
  if (resolved < 0) resolved += rank;
  ARMNET_CHECK(resolved >= 0 && resolved < rank);
  int64_t total_axis = 0;
  std::vector<const Tensor*> ptrs;
  ptrs.reserve(parts.size());
  for (const Tensor& p : parts) {
    total_axis += p.dim(resolved);
    ptrs.push_back(&p);
  }
  std::vector<int64_t> out_dims = parts.front().shape().dims();
  out_dims[static_cast<size_t>(resolved)] = total_axis;
  Tensor out{Shape(out_dims)};
  ConcatOut(ptrs, resolved, out);
  return out;
}

void SliceOut(const Tensor& a, int axis, int64_t start, int64_t length,
              Tensor& out) {
  const int rank = a.rank();
  if (axis < 0) axis += rank;
  ARMNET_CHECK(axis >= 0 && axis < rank);
  ARMNET_CHECK(start >= 0 && length >= 0 && start + length <= a.dim(axis))
      << "Slice out of range on axis " << axis;
  ARMNET_DCHECK_EQ(out.dim(axis), length);

  int64_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= a.dim(d);
  int64_t inner = 1;
  for (int d = axis + 1; d < rank; ++d) inner *= a.dim(d);
  const int64_t in_axis = a.dim(axis);
  ARMNET_DCHECK_EQ(outer * in_axis * inner, a.numel());

  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + (o * in_axis + start) * inner;
    float* dst = out.data() + o * length * inner;
    std::copy(src, src + length * inner, dst);
  }
}

Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length) {
  const int rank = a.rank();
  int resolved = axis;
  if (resolved < 0) resolved += rank;
  ARMNET_CHECK(resolved >= 0 && resolved < rank);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<size_t>(resolved)] = length;
  Tensor out{Shape(out_dims)};
  SliceOut(a, resolved, start, length, out);
  return out;
}

void IndexSelectOut(const Tensor& a, int axis,
                    const std::vector<int64_t>& indices, Tensor& out) {
  const int rank = a.rank();
  if (axis < 0) axis += rank;
  ARMNET_CHECK(axis >= 0 && axis < rank);
  const int64_t in_axis = a.dim(axis);
  ARMNET_DCHECK_EQ(out.dim(axis), static_cast<int64_t>(indices.size()));

  int64_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= a.dim(d);
  int64_t inner = 1;
  for (int d = axis + 1; d < rank; ++d) inner *= a.dim(d);

  for (int64_t o = 0; o < outer; ++o) {
    for (size_t k = 0; k < indices.size(); ++k) {
      const int64_t idx = indices[k];
      ARMNET_CHECK(idx >= 0 && idx < in_axis)
          << "IndexSelect index " << idx << " out of range";
      const float* src = a.data() + (o * in_axis + idx) * inner;
      float* dst =
          out.data() +
          (o * static_cast<int64_t>(indices.size()) + static_cast<int64_t>(k)) *
              inner;
      std::copy(src, src + inner, dst);
    }
  }
}

Tensor IndexSelect(const Tensor& a, int axis,
                   const std::vector<int64_t>& indices) {
  const int rank = a.rank();
  int resolved = axis;
  if (resolved < 0) resolved += rank;
  ARMNET_CHECK(resolved >= 0 && resolved < rank);
  std::vector<int64_t> out_dims = a.shape().dims();
  out_dims[static_cast<size_t>(resolved)] = static_cast<int64_t>(indices.size());
  Tensor out{Shape(out_dims)};
  IndexSelectOut(a, resolved, indices, out);
  return out;
}

Tensor IndexSelectBackward(const Tensor& g, const Shape& full, int axis,
                           const std::vector<int64_t>& indices) {
  const int rank = full.rank();
  if (axis < 0) axis += rank;
  ARMNET_CHECK(axis >= 0 && axis < rank);
  ARMNET_CHECK_EQ(g.dim(axis), static_cast<int64_t>(indices.size()));
  Tensor out(full);
  const int64_t full_axis = full.dim(axis);

  int64_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= full.dim(d);
  int64_t inner = 1;
  for (int d = axis + 1; d < rank; ++d) inner *= full.dim(d);

  for (int64_t o = 0; o < outer; ++o) {
    for (size_t k = 0; k < indices.size(); ++k) {
      const int64_t idx = indices[k];
      ARMNET_CHECK(idx >= 0 && idx < full_axis);
      const float* src =
          g.data() +
          (o * static_cast<int64_t>(indices.size()) + static_cast<int64_t>(k)) *
              inner;
      float* dst = out.data() + (o * full_axis + idx) * inner;
      kernels::VecAxpy(1.0f, src, dst, inner);
    }
  }
  return out;
}

Tensor SliceBackward(const Tensor& a, const Shape& full, int axis,
                     int64_t start) {
  const int rank = full.rank();
  if (axis < 0) axis += rank;
  ARMNET_CHECK(axis >= 0 && axis < rank);
  ARMNET_CHECK_EQ(a.rank(), rank);
  const int64_t length = a.dim(axis);
  ARMNET_CHECK(start >= 0 && start + length <= full.dim(axis));

  Tensor out(full);
  int64_t outer = 1;
  for (int d = 0; d < axis; ++d) outer *= full.dim(d);
  int64_t inner = 1;
  for (int d = axis + 1; d < rank; ++d) inner *= full.dim(d);
  const int64_t full_axis = full.dim(axis);

  for (int64_t o = 0; o < outer; ++o) {
    const float* src = a.data() + o * length * inner;
    float* dst = out.data() + (o * full_axis + start) * inner;
    std::copy(src, src + length * inner, dst);
  }
  return out;
}

void CheckRowIds(const std::vector<int64_t>& ids, int64_t rows,
                 const char* op_name) {
  // Branchless pre-scan: OR the sign bit and an unsigned compare across all
  // ids, then (only on failure) rescan to name the first offender. This
  // hoists the per-id CHECK out of the copy loop without weakening the
  // id-naming contract — the failure message still cites the exact id.
  const uint64_t bound = static_cast<uint64_t>(rows);
  uint64_t bad = 0;
  for (const int64_t id : ids) {
    bad |= static_cast<uint64_t>(id) >= bound ? 1u : 0u;
  }
  if (bad == 0) return;
  for (const int64_t id : ids) {
    ARMNET_CHECK(id >= 0 && id < rows)
        << op_name << " id " << id << " out of range [0, " << rows << ")";
  }
}

void GatherRowsOut(const Tensor& table, const std::vector<int64_t>& ids,
                   Tensor& out) {
  ARMNET_CHECK_EQ(table.rank(), 2) << "GatherRows table must be rank 2";
  const int64_t rows = table.dim(0);
  const int64_t width = table.dim(1);
  ARMNET_DCHECK(out.dim(0) == static_cast<int64_t>(ids.size()) &&
                out.dim(1) == width);
  CheckRowIds(ids, rows, "GatherRows");
  for (size_t i = 0; i < ids.size(); ++i) {
    const float* src = table.data() + ids[i] * width;
    std::copy(src, src + width, out.data() + static_cast<int64_t>(i) * width);
  }
}

Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids) {
  ARMNET_CHECK_EQ(table.rank(), 2) << "GatherRows table must be rank 2";
  Tensor out{Shape({static_cast<int64_t>(ids.size()), table.dim(1)})};
  GatherRowsOut(table, ids, out);
  return out;
}

void ScatterAddRows(Tensor& dest, const std::vector<int64_t>& ids,
                    const Tensor& src) {
  ARMNET_CHECK_EQ(dest.rank(), 2);
  ARMNET_CHECK_EQ(src.rank(), 2);
  ARMNET_CHECK_EQ(src.dim(0), static_cast<int64_t>(ids.size()));
  ARMNET_CHECK_EQ(src.dim(1), dest.dim(1));
  const int64_t rows = dest.dim(0);
  const int64_t width = dest.dim(1);
  CheckRowIds(ids, rows, "ScatterAddRows");
  for (size_t i = 0; i < ids.size(); ++i) {
    kernels::VecAxpy(1.0f, src.data() + static_cast<int64_t>(i) * width,
                     dest.data() + ids[i] * width, width);
  }
}

void SoftmaxLastDimOut(const Tensor& a, Tensor& out) {
  ARMNET_CHECK_GE(a.rank(), 1);
  ARMNET_DCHECK(a.shape() == out.shape());
  const int64_t d = a.dim(-1);
  if (d == 0) return;  // avoids dividing by a zero-sized last dim
  const int64_t rows = a.numel() / d;
  for (int64_t r = 0; r < rows; ++r) {
    const float* src = a.data() + r * d;
    float* dst = out.data() + r * d;
    float row_max = src[0];
    for (int64_t j = 1; j < d; ++j) row_max = std::max(row_max, src[j]);
    float total = 0;
    for (int64_t j = 0; j < d; ++j) {
      dst[j] = std::exp(src[j] - row_max);
      total += dst[j];
    }
    const float inv = 1.0f / total;
    for (int64_t j = 0; j < d; ++j) dst[j] *= inv;
  }
}

Tensor SoftmaxLastDim(const Tensor& a) {
  ARMNET_CHECK_GE(a.rank(), 1);
  Tensor out(a.shape());
  SoftmaxLastDimOut(a, out);
  return out;
}

}  // namespace armnet::tmath
