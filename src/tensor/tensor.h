#ifndef ARMNET_TENSOR_TENSOR_H_
#define ARMNET_TENSOR_TENSOR_H_

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "tensor/shape.h"
#include "util/rng.h"

namespace armnet {

// Dense float32 tensor with value semantics over shared, contiguous,
// row-major storage.
//
// Copying a Tensor is cheap (shared storage); Reshape() returns a view onto
// the same storage, and ViewSlice() a view at a nonzero element offset into
// it (the execution-plan arena packs many intermediates into one buffer this
// way). Mutating through data() is visible to all views, which the autograd
// engine exploits for in-place gradient accumulation. Ops that need an
// independent buffer call Clone().
class Tensor {
 public:
  // Default-constructed tensors are empty (rank 0, 1 element is NOT implied;
  // numel() == 0 distinguishes "no tensor yet").
  Tensor() = default;

  // Zero-filled tensor of the given shape (all dims must be concrete).
  // Storage comes from the current thread's TensorPool when one is active
  // (see tensor/storage_pool.h), otherwise from the heap.
  explicit Tensor(Shape shape);

  // --- Factories ---------------------------------------------------------

  static Tensor Zeros(Shape shape) { return Tensor(std::move(shape)); }
  // Like Tensor(Shape) but skips the zero fill: recycled pool buffers keep
  // their stale contents. Only for buffers every element of which the caller
  // overwrites before reading (the plan arena's fully-written slots); all
  // other acquisition paths keep the zeroing contract.
  static Tensor Uninitialized(Shape shape);
  static Tensor Ones(Shape shape) { return Full(std::move(shape), 1.0f); }
  static Tensor Full(Shape shape, float value);
  // Rank-0 scalar.
  static Tensor Scalar(float value);
  static Tensor FromVector(Shape shape, std::vector<float> values);
  // I.i.d. uniform in [lo, hi).
  static Tensor Uniform(Shape shape, float lo, float hi, Rng& rng);
  // I.i.d. normal(mean, stddev).
  static Tensor Normal(Shape shape, float mean, float stddev, Rng& rng);

  // --- Introspection ------------------------------------------------------

  const Shape& shape() const { return shape_; }
  int rank() const { return shape_.rank(); }
  int64_t dim(int i) const { return shape_.dim(i); }
  int64_t numel() const { return storage_ ? shape_.numel() : 0; }
  bool defined() const { return storage_ != nullptr; }

  float* data() {
    ARMNET_DCHECK(storage_ != nullptr);
    return storage_->data() + offset_;
  }
  const float* data() const {
    ARMNET_DCHECK(storage_ != nullptr);
    return storage_->data() + offset_;
  }

  // Flat element access.
  float& operator[](int64_t i) {
    ARMNET_DCHECK(i >= 0 && i < numel());
    return data()[i];
  }
  float operator[](int64_t i) const {
    ARMNET_DCHECK(i >= 0 && i < numel());
    return data()[i];
  }

  // Multi-index access (rank must match the number of indices). Debug builds
  // bounds-check every index; negative indices count from the end.
  float& at(std::initializer_list<int64_t> indices) {
    // FlatIndex first: it checks storage liveness before we dereference.
    const int64_t flat = FlatIndex(indices);
    return data()[flat];
  }
  float at(std::initializer_list<int64_t> indices) const {
    const int64_t flat = FlatIndex(indices);
    return data()[flat];
  }

  // Convenience forms: t.at(i, j) == t.at({i, j}).
  template <typename... Index>
  float& at(Index... index) {
    return at({static_cast<int64_t>(index)...});
  }
  template <typename... Index>
  float at(Index... index) const {
    return at({static_cast<int64_t>(index)...});
  }

  // Value of a tensor that holds exactly one element (any rank).
  float item() const {
    ARMNET_CHECK_EQ(numel(), 1) << "item() on tensor of shape "
                                << shape_.ToString();
    return data()[0];
  }

  // --- Transformations ----------------------------------------------------

  // View with a new shape over the same storage; element count must match.
  // One dimension may be -1 and is inferred. Preserves this view's offset.
  Tensor Reshape(Shape shape) const;

  // View of `shape` starting `offset` elements into THIS view (offsets
  // compose). The window [offset, offset + shape.numel()) must stay inside
  // the underlying storage. Shares storage: writes are visible to all views.
  Tensor ViewSlice(int64_t offset, Shape shape) const;

  // Deep copy with independent storage.
  Tensor Clone() const;

  // Overwrites every element with `value`.
  void Fill(float value);

  // True if shapes match and all elements are within `tolerance`.
  bool AllClose(const Tensor& other, float tolerance = 1e-5f) const;

  std::string ToString(int64_t max_elements = 32) const;

 private:
  int64_t FlatIndex(std::initializer_list<int64_t> indices) const;

  std::shared_ptr<std::vector<float>> storage_;
  Shape shape_;
  // Element offset of this view into storage_ (0 for whole-buffer tensors).
  int64_t offset_ = 0;
};

}  // namespace armnet

#endif  // ARMNET_TENSOR_TENSOR_H_
