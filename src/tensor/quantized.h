#ifndef ARMNET_TENSOR_QUANTIZED_H_
#define ARMNET_TENSOR_QUANTIZED_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/half.h"
#include "tensor/tensor.h"
#include "util/sync.h"

// Read-only quantized embedding-table storage for the no-grad serving path
// (DESIGN.md §15). Training always runs on the float32 nn::Embedding table;
// a QuantizedTable is produced at export time (Quantize) or opened over a
// memory-mapped weight file (FromRaw with an owner keep-alive) and attached
// to an Embedding for inference.
//
// Storage formats (row-major, contiguous):
//   kFloat32  4*width bytes/row   verbatim floats (mmap sharing, no quant)
//   kFloat16  2*width bytes/row   IEEE binary16 per element
//   kInt8       width bytes/row   symmetric per-row scale, stored as fp16
//                                 (+2 bytes/row in the separate scale array)
//
// The int8 scale is half-rounded BEFORE the row is quantized against it, so
// dequantization reconstructs exactly q * HalfToFloat(scale_h) — the stored
// bytes fully determine the float output regardless of which process or
// backend gathers them.

namespace armnet {

enum class QuantKind : uint32_t {
  kFloat32 = 0,
  kFloat16 = 1,
  kInt8 = 2,
};

const char* QuantKindName(QuantKind kind);

class QuantizedTable {
 public:
  // Quantizes a rank-2 float32 table ([rows, width]) into owned storage.
  static std::shared_ptr<QuantizedTable> Quantize(const Tensor& table,
                                                  QuantKind kind);

  // Wraps externally owned storage (e.g. a mapped file). `data` must hold
  // rows * RowBytes(kind, width) bytes; `scales` must hold one half_t per
  // row for kInt8 (and must be null otherwise). `owner` is held alive for
  // the table's lifetime — the mmap keep-alive.
  static std::shared_ptr<QuantizedTable> FromRaw(
      QuantKind kind, int64_t rows, int64_t width, const void* data,
      const half_t* scales, std::shared_ptr<const void> owner);

  // Payload bytes of one row in the data region (excludes the int8 scale,
  // which lives in the separate scale array).
  static int64_t RowBytes(QuantKind kind, int64_t width);

  // Dequantizes the selected rows into `out` ([ids.size(), width], float32).
  // Every id must be in [0, rows()); aborts naming the first offender.
  // Routes through the hot-row cache when one is enabled.
  void GatherRowsOut(const std::vector<int64_t>& ids, Tensor& out) const;
  Tensor GatherRows(const std::vector<int64_t>& ids) const;

  // Dequantizes one row straight from backing storage, bypassing the cache.
  void DequantizeRow(int64_t id, float* out) const;

  int64_t rows() const { return rows_; }
  int64_t width() const { return width_; }
  QuantKind kind() const { return kind_; }
  // Total storage cost per row including the per-row scale, the number the
  // Fig. 9 bench reports as bytes_per_row.
  int64_t bytes_per_row() const;
  int64_t data_bytes() const { return rows_ * RowBytes(kind_, width_); }
  const void* data() const { return data_; }
  // Per-row fp16 scales (kInt8 only; null for other kinds).
  const half_t* scales() const { return scales_; }

  // Installs a sharded direct-mapped cache of dequantized rows with at
  // least `slots` total entries. Not thread-safe against concurrent
  // gathers: enable at attach time, before the table serves traffic.
  void EnableHotRowCache(int64_t slots);
  bool cache_enabled() const { return cache_ != nullptr; }
  uint64_t cache_hits() const;
  uint64_t cache_misses() const;

 private:
  QuantizedTable() = default;

  // One direct-mapped cache shard; rows hash to a shard by id so concurrent
  // gathers over a skewed distribution contend on different locks.
  struct CacheShard {
    Mutex mu;
    std::vector<int64_t> slot_id ARMNET_GUARDED_BY(mu);  // -1 == empty
    std::vector<float> slot_row ARMNET_GUARDED_BY(mu);
  };
  struct Cache {
    int64_t slots_per_shard = 0;
    std::vector<std::unique_ptr<CacheShard>> shards;
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
  };

  // Copies row `id` out of the cache, filling the slot on a miss.
  void CachedRow(int64_t id, float* out) const;

  QuantKind kind_ = QuantKind::kFloat32;
  int64_t rows_ = 0;
  int64_t width_ = 0;
  const void* data_ = nullptr;
  const half_t* scales_ = nullptr;

  // Exactly one of: owned storage (Quantize) or an external keep-alive
  // (FromRaw — typically the mapped file).
  std::vector<int8_t> own_i8_;
  std::vector<uint16_t> own_u16_;
  std::vector<float> own_f32_;
  std::vector<half_t> own_scales_;
  std::shared_ptr<const void> owner_;

  std::unique_ptr<Cache> cache_;
};

}  // namespace armnet

#endif  // ARMNET_TENSOR_QUANTIZED_H_
