// Scalar reference kernels. This translation unit is compiled with
// auto-vectorization disabled (see CMakeLists.txt) so that it is an honest
// "plain CPU" baseline for the backend comparison in the Table 3 bench.

#include <cmath>

#include "tensor/half.h"
#include "tensor/kernels.h"

namespace armnet::kernels::scalar {

void VecAdd(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] + b[i];
}

void VecSub(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] - b[i];
}

void VecMul(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * b[i];
}

void VecDiv(const float* a, const float* b, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] / b[i];
}

void VecScale(const float* a, float s, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = a[i] * s;
}

void VecAxpy(float alpha, const float* x, float* y, int64_t n) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

void VecExp(const float* a, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = std::exp(a[i]);
}

float VecDot(const float* a, const float* b, int64_t n) {
  float acc = 0;
  for (int64_t i = 0; i < n; ++i) acc += a[i] * b[i];
  return acc;
}

float VecSum(const float* a, int64_t n) {
  float acc = 0;
  for (int64_t i = 0; i < n; ++i) acc += a[i];
  return acc;
}

void Gemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
          float beta, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * n;
    if (beta == 0.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] = 0.0f;
    } else if (beta != 1.0f) {
      for (int64_t j = 0; j < n; ++j) crow[j] *= beta;
    }
    const float* arow = a + i * k;
    for (int64_t p = 0; p < k; ++p) {
      const float av = arow[p];
      const float* brow = b + p * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += av * brow[j];
    }
  }
}

void DequantRowI8(const int8_t* src, float scale, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) {
    out[i] = static_cast<float>(src[i]) * scale;
  }
}

void DequantRowF16(const uint16_t* src, float* out, int64_t n) {
  for (int64_t i = 0; i < n; ++i) out[i] = HalfToFloat(src[i]);
}

}  // namespace armnet::kernels::scalar
