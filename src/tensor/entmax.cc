#include "tensor/entmax.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "tensor/tensor_ops.h"

namespace armnet::tmath {

namespace {

// Exact sparsemax on one row: p = [z − τ]_+ with τ from the sorted support
// condition of Martins & Astudillo (2016).
void SparsemaxRow(const float* z, float* p, int64_t d) {
  std::vector<float> sorted(z, z + d);
  std::sort(sorted.begin(), sorted.end(), std::greater<float>());
  double cumulative = 0;
  double tau = 0;
  int64_t support = 0;
  for (int64_t k = 0; k < d; ++k) {
    cumulative += sorted[static_cast<size_t>(k)];
    // Candidate threshold with support size k+1.
    const double candidate = (cumulative - 1.0) / static_cast<double>(k + 1);
    if (sorted[static_cast<size_t>(k)] > candidate) {
      tau = candidate;
      support = k + 1;
    }
  }
  (void)support;
  for (int64_t j = 0; j < d; ++j) {
    const double v = static_cast<double>(z[j]) - tau;
    p[j] = v > 0 ? static_cast<float>(v) : 0.0f;
  }
}

// Exact α = 1.5 entmax on one row: p_i = [z_i/2 − τ]_+², τ from the largest
// support size k whose quadratic threshold keeps the k-th entry positive.
void Entmax15Row(const float* z, float* p, int64_t d) {
  std::vector<double> half(static_cast<size_t>(d));
  for (int64_t j = 0; j < d; ++j) half[static_cast<size_t>(j)] = 0.5 * z[j];
  std::vector<double> sorted = half;
  std::sort(sorted.begin(), sorted.end(), std::greater<double>());

  double tau = sorted[0] - 1.0;  // fallback: full mass on the max
  double cum = 0;
  double cum_sq = 0;
  for (int64_t k = 0; k < d; ++k) {
    const double v = sorted[static_cast<size_t>(k)];
    cum += v;
    cum_sq += v * v;
    const double kk = static_cast<double>(k + 1);
    const double mean = cum / kk;
    // Sum of squared deviations within the candidate support.
    const double ss = cum_sq - cum * cum / kk;
    const double discriminant = (1.0 - ss) / kk;
    if (discriminant < 0) continue;
    const double candidate = mean - std::sqrt(discriminant);
    if (v > candidate) tau = candidate;
  }
  double total = 0;
  for (int64_t j = 0; j < d; ++j) {
    const double v = half[static_cast<size_t>(j)] - tau;
    const double pj = v > 0 ? v * v : 0.0;
    p[j] = static_cast<float>(pj);
    total += pj;
  }
  // Guard against floating-point drift: renormalize.
  ARMNET_CHECK_GT(total, 0);
  const float inv = static_cast<float>(1.0 / total);
  for (int64_t j = 0; j < d; ++j) p[j] *= inv;
}

// x^p for x > 0 via expf/logf. std::pow promotes to double pow, which
// dominated ARM-Net training time before this fast path (the bisection
// below evaluates it d times per iteration per attention row).
inline float FastPow(float x, float p) { return std::exp(p * std::log(x)); }

// General α > 1 entmax on one row via bisection over τ (Peters & Martins
// 2019, Algorithm 1): p_i(τ) = [(α−1)z_i − τ]_+^{1/(α−1)}, Σp decreasing
// in τ, root bracketed by [max((α−1)z) − 1, max((α−1)z)]. 30 halvings
// narrow the bracket below 1e-9, past float32 resolution; a final
// renormalization absorbs the residual.
void EntmaxBisectRow(const float* z, float* p, int64_t d, float alpha) {
  const float am1 = alpha - 1.0f;
  const float inv_am1 = 1.0f / am1;
  float z_max = -std::numeric_limits<float>::infinity();
  for (int64_t j = 0; j < d; ++j) {
    p[j] = am1 * z[j];  // stash scaled scores in the output buffer
    z_max = std::max(z_max, p[j]);
  }
  float lo = z_max - 1.0f;
  float hi = z_max;

  // Only scores above the lower bracket can ever enter the support; the
  // active set shrinks as `lo` rises, which keeps the inner loop short on
  // wide rows (m up to 43 in the benchmark schemas).
  constexpr int kStackCap = 64;
  float stack_buffer[kStackCap];
  std::vector<float> heap_buffer;
  float* active = stack_buffer;
  if (d > kStackCap) {
    heap_buffer.resize(static_cast<size_t>(d));
    active = heap_buffer.data();
  }
  int num_active = 0;
  for (int64_t j = 0; j < d; ++j) {
    if (p[j] > lo) active[num_active++] = p[j];
  }

  for (int iteration = 0; iteration < 24; ++iteration) {
    const float mid = 0.5f * (lo + hi);
    float total = 0;
    for (int a = 0; a < num_active; ++a) {
      const float v = active[a] - mid;
      if (v > 0) total += FastPow(v, inv_am1);
    }
    if (total < 1.0f) {
      hi = mid;
    } else {
      lo = mid;
      int kept = 0;
      for (int a = 0; a < num_active; ++a) {
        if (active[a] > lo) active[kept++] = active[a];
      }
      num_active = kept;
    }
  }
  const float tau = 0.5f * (lo + hi);
  float total = 0;
  for (int64_t j = 0; j < d; ++j) {
    const float v = p[j] - tau;
    p[j] = v > 0 ? FastPow(v, inv_am1) : 0.0f;
    total += p[j];
  }
  ARMNET_CHECK_GT(total, 0);
  const float inv = 1.0f / total;
  for (int64_t j = 0; j < d; ++j) p[j] *= inv;
}

template <typename RowFn>
void ApplyRowsOut(const Tensor& z, Tensor& out, RowFn row_fn) {
  ARMNET_CHECK_GE(z.rank(), 1);
  ARMNET_DCHECK(z.shape() == out.shape());
  const int64_t d = z.dim(-1);
  ARMNET_CHECK_GT(d, 0);
  const int64_t rows = z.numel() / d;
  for (int64_t r = 0; r < rows; ++r) {
    row_fn(z.data() + r * d, out.data() + r * d, d);
  }
}

template <typename RowFn>
Tensor ApplyRows(const Tensor& z, RowFn row_fn) {
  Tensor out(z.shape());
  ApplyRowsOut(z, out, row_fn);
  return out;
}

}  // namespace

Tensor SparsemaxLastDim(const Tensor& z) { return ApplyRows(z, SparsemaxRow); }

Tensor Entmax15ExactLastDim(const Tensor& z) {
  return ApplyRows(z, Entmax15Row);
}

void EntmaxLastDimOut(const Tensor& z, float alpha, Tensor& out) {
  ARMNET_CHECK_GE(alpha, 1.0f) << "entmax requires alpha >= 1";
  if (alpha == 1.0f) {
    SoftmaxLastDimOut(z, out);
    return;
  }
  if (alpha == 2.0f) {
    ApplyRowsOut(z, out, SparsemaxRow);
    return;
  }
  if (alpha == 1.5f) {
    ApplyRowsOut(z, out, Entmax15Row);
    return;
  }
  ApplyRowsOut(z, out, [alpha](const float* zr, float* pr, int64_t d) {
    EntmaxBisectRow(zr, pr, d, alpha);
  });
}

Tensor EntmaxLastDim(const Tensor& z, float alpha) {
  ARMNET_CHECK_GE(alpha, 1.0f) << "entmax requires alpha >= 1";
  if (alpha == 1.0f) return SoftmaxLastDim(z);
  Tensor out(z.shape());
  EntmaxLastDimOut(z, alpha, out);
  return out;
}

}  // namespace armnet::tmath
