#ifndef ARMNET_TENSOR_STORAGE_POOL_H_
#define ARMNET_TENSOR_STORAGE_POOL_H_

#include <cstdint>
#include <memory>
#include <vector>

// Pooled tensor storage (DESIGN.md §9).
//
// Every Tensor allocation normally hits the global allocator with a fresh
// std::vector<float>. Steady-state inference allocates the same handful of
// buffer sizes over and over (one batch worth of intermediates per forward
// pass, all dead by the next batch), so a TensorPool recycles those buffers
// through size-bucketed free lists instead.
//
// Opt-in and scoped: nothing changes until a ScopedTensorPool installs a
// pool for the current thread. The pool object itself is thread-safe — the
// same TensorPool may be installed on many threads at once (e.g. ParallelFor
// workers) — while installation is per-thread, so one thread's scope never
// reroutes another thread's allocations.
//
// Lifetime: buffers may outlive the scope and the pool. The storage handle's
// deleter holds a shared_ptr to the pool's core; returning a buffer after
// the TensorPool is destroyed simply frees it.

namespace armnet {

namespace tensor_internal {

struct PoolCore;

// Storage for `n` floats. Served from the current thread's active pool when
// one is installed, otherwise from the heap. `zero` guarantees all n
// elements read 0.0f (recycled buffers hold stale data); pass false only
// when the caller overwrites every element.
std::shared_ptr<std::vector<float>> AllocateStorage(size_t n, bool zero);

// True when the calling thread currently routes allocations through a pool.
// The plan tracer refuses to run under one: its slot identity keying relies
// on every op output getting fresh storage, and a recycling pool can hand
// the same pointer to two distinct traced values.
bool PoolActive();

}  // namespace tensor_internal

// Counters for one TensorPool. Monotonic except bytes_pooled (a gauge).
struct TensorPoolStats {
  int64_t hits = 0;        // acquisitions served from a free list
  int64_t misses = 0;      // acquisitions that fell through to the heap
  int64_t returns = 0;     // buffers recycled back into a free list
  int64_t dropped = 0;     // returns freed instead (pool closed/bucket full)
  int64_t bytes_served = 0;  // cumulative bytes handed out (hits + misses)
  int64_t bytes_pooled = 0;  // bytes currently sitting in free lists
};

// A size-bucketed buffer recycler. Buckets are power-of-two float counts;
// each holds up to a fixed number of idle buffers (excess returns are
// freed). All methods are thread-safe.
class TensorPool {
 public:
  TensorPool();
  // Frees all idle buffers and closes the core: storage still alive in
  // escaped Tensors stays valid and is heap-freed on its final release.
  ~TensorPool();

  TensorPool(const TensorPool&) = delete;
  TensorPool& operator=(const TensorPool&) = delete;

  TensorPoolStats stats() const;

 private:
  friend class ScopedTensorPool;

  std::shared_ptr<tensor_internal::PoolCore> core_;
};

// RAII: routes the current thread's Tensor allocations through `pool` for
// the guard's lifetime. Scopes nest (inner pool wins; the outer one is
// restored on exit). The referenced TensorPool must outlive the scope.
class ScopedTensorPool {
 public:
  explicit ScopedTensorPool(TensorPool& pool);
  ~ScopedTensorPool();

  ScopedTensorPool(const ScopedTensorPool&) = delete;
  ScopedTensorPool& operator=(const ScopedTensorPool&) = delete;

 private:
  std::shared_ptr<tensor_internal::PoolCore> prev_;
};

}  // namespace armnet

#endif  // ARMNET_TENSOR_STORAGE_POOL_H_
