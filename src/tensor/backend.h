#ifndef ARMNET_TENSOR_BACKEND_H_
#define ARMNET_TENSOR_BACKEND_H_

namespace armnet {

// Execution backend for the numeric kernels.
//
// kScalar is a straightforward reference implementation compiled with
// auto-vectorization disabled; kSimd uses AVX2+FMA intrinsics. The Table 3
// throughput experiment uses this switch as the "CPU vs accelerated device"
// axis (the paper used CPU vs GPU; see DESIGN.md §3 Substitutions).
enum class Backend {
  kScalar,
  kSimd,
};

// Returns the process-wide active backend (default: kSimd when the CPU
// supports AVX2+FMA, otherwise kScalar).
Backend GetBackend();

// Switches the active backend. Aborts if kSimd is requested on a CPU
// without AVX2 support.
void SetBackend(Backend backend);

// True if this binary can execute the SIMD kernels on this machine.
bool SimdAvailable();

// True if the CPU additionally supports the F16C half-precision conversion
// instructions. The fp16 dequantize dispatcher requires this on top of
// SimdAvailable(); without it the scalar bit-twiddle path runs instead.
bool F16cAvailable();

// Human-readable backend name, e.g. for experiment output.
const char* BackendName(Backend backend);

}  // namespace armnet

#endif  // ARMNET_TENSOR_BACKEND_H_
