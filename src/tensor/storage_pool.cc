#include "tensor/storage_pool.h"

#include <algorithm>
#include <unordered_map>
#include <utility>

#include "util/check.h"
#include "util/sync.h"

namespace armnet {

namespace tensor_internal {

namespace {

// Idle buffers kept per size bucket; returns beyond this are freed so a
// burst of large intermediates cannot pin memory forever.
constexpr size_t kMaxIdlePerBucket = 64;

size_t RoundUpPow2(size_t n) {
  size_t b = 1;
  while (b < n) b <<= 1;
  return b;
}

}  // namespace

// Shared between the TensorPool handle, every scope that installs it, and
// the deleter of every storage block it has served. The mutex guards the
// free lists and the stats.
struct PoolCore {
  Mutex mu;
  bool closed ARMNET_GUARDED_BY(mu) = false;
  // bucket (pow2 float count) -> idle buffers whose capacity >= bucket.
  std::unordered_map<size_t, std::vector<std::unique_ptr<std::vector<float>>>>
      buckets ARMNET_GUARDED_BY(mu);
  TensorPoolStats stats ARMNET_GUARDED_BY(mu);
};

namespace {

// The innermost active pool for this thread; null means heap allocation.
thread_local std::shared_ptr<PoolCore> g_active_pool;

// Deleter for pooled storage: returns the buffer to its bucket, or frees it
// when the pool is gone/full. Holds the core alive so escaped tensors stay
// safe past the pool's destruction.
struct PoolReturn {
  std::shared_ptr<PoolCore> core;
  size_t bucket;

  void operator()(std::vector<float>* buf) const {
    {
      MutexLock lock(core->mu);
      auto& idle = core->buckets[bucket];
      if (!core->closed && idle.size() < kMaxIdlePerBucket) {
        idle.emplace_back(buf);
        core->stats.returns += 1;
        core->stats.bytes_pooled +=
            static_cast<int64_t>(bucket * sizeof(float));
        return;
      }
      core->stats.dropped += 1;
    }
    delete buf;
  }
};

}  // namespace

std::shared_ptr<std::vector<float>> AllocateStorage(size_t n, bool zero) {
  const std::shared_ptr<PoolCore>& core = g_active_pool;
  if (core == nullptr) {
    // No pool installed: plain heap storage, zero-filled by the vector.
    return std::make_shared<std::vector<float>>(n, 0.0f);
  }

  const size_t bucket = RoundUpPow2(std::max<size_t>(n, size_t{1}));
  std::unique_ptr<std::vector<float>> buf;
  {
    MutexLock lock(core->mu);
    auto it = core->buckets.find(bucket);
    if (it != core->buckets.end() && !it->second.empty()) {
      buf = std::move(it->second.back());
      it->second.pop_back();
      core->stats.hits += 1;
      core->stats.bytes_pooled -=
          static_cast<int64_t>(bucket * sizeof(float));
    } else {
      core->stats.misses += 1;
    }
    core->stats.bytes_served += static_cast<int64_t>(n * sizeof(float));
  }
  if (buf == nullptr) {
    buf = std::make_unique<std::vector<float>>();
    buf->reserve(bucket);
  }
  if (zero) {
    buf->assign(n, 0.0f);
  } else {
    // resize() value-initializes only the elements it appends; recycled
    // prefixes keep stale data, which the caller promised to overwrite.
    buf->resize(n);
  }
  return std::shared_ptr<std::vector<float>>(buf.release(),
                                             PoolReturn{core, bucket});
}

bool PoolActive() { return g_active_pool != nullptr; }

}  // namespace tensor_internal

TensorPool::TensorPool()
    : core_(std::make_shared<tensor_internal::PoolCore>()) {}

TensorPool::~TensorPool() {
  MutexLock lock(core_->mu);
  core_->closed = true;
  core_->buckets.clear();
  core_->stats.bytes_pooled = 0;
}

TensorPoolStats TensorPool::stats() const {
  MutexLock lock(core_->mu);
  return core_->stats;
}

ScopedTensorPool::ScopedTensorPool(TensorPool& pool)
    : prev_(std::move(tensor_internal::g_active_pool)) {
  ARMNET_DCHECK(pool.core_ != nullptr);
  tensor_internal::g_active_pool = pool.core_;
}

ScopedTensorPool::~ScopedTensorPool() {
  tensor_internal::g_active_pool = std::move(prev_);
}

}  // namespace armnet
