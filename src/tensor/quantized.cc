#include "tensor/quantized.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "tensor/kernels.h"
#include "tensor/tensor_ops.h"
#include "util/check.h"

namespace armnet {

namespace {

// Shard count is a power of two so both cache index computations stay
// shift/mask; 16 shards keeps lock contention negligible for the serving
// pool sizes the repo runs (<= 8 workers).
constexpr int64_t kCacheShards = 16;

}  // namespace

const char* QuantKindName(QuantKind kind) {
  switch (kind) {
    case QuantKind::kFloat32:
      return "float32";
    case QuantKind::kFloat16:
      return "float16";
    case QuantKind::kInt8:
      return "int8";
  }
  return "unknown";
}

int64_t QuantizedTable::RowBytes(QuantKind kind, int64_t width) {
  switch (kind) {
    case QuantKind::kFloat32:
      return width * static_cast<int64_t>(sizeof(float));
    case QuantKind::kFloat16:
      return width * static_cast<int64_t>(sizeof(half_t));
    case QuantKind::kInt8:
      return width;
  }
  ARMNET_CHECK(false) << "bad QuantKind " << static_cast<uint32_t>(kind);
  return 0;
}

int64_t QuantizedTable::bytes_per_row() const {
  int64_t bytes = RowBytes(kind_, width_);
  if (kind_ == QuantKind::kInt8) {
    bytes += static_cast<int64_t>(sizeof(half_t));  // per-row scale
  }
  return bytes;
}

std::shared_ptr<QuantizedTable> QuantizedTable::Quantize(const Tensor& table,
                                                         QuantKind kind) {
  ARMNET_CHECK_EQ(table.rank(), 2) << "Quantize table must be rank 2";
  const int64_t rows = table.dim(0);
  const int64_t width = table.dim(1);
  auto out = std::shared_ptr<QuantizedTable>(new QuantizedTable());
  out->kind_ = kind;
  out->rows_ = rows;
  out->width_ = width;
  const float* src = table.numel() > 0 ? table.data() : nullptr;

  switch (kind) {
    case QuantKind::kFloat32: {
      out->own_f32_.resize(rows * width);
      if (rows * width > 0) {
        std::memcpy(out->own_f32_.data(), src,
                    rows * width * sizeof(float));
      }
      out->data_ = out->own_f32_.data();
      break;
    }
    case QuantKind::kFloat16: {
      out->own_u16_.resize(rows * width);
      for (int64_t i = 0; i < rows * width; ++i) {
        out->own_u16_[i] = FloatToHalf(src[i]);
      }
      out->data_ = out->own_u16_.data();
      break;
    }
    case QuantKind::kInt8: {
      out->own_i8_.resize(rows * width);
      out->own_scales_.resize(rows);
      for (int64_t r = 0; r < rows; ++r) {
        const float* row = src + r * width;
        float amax = 0.0f;
        for (int64_t j = 0; j < width; ++j) {
          amax = std::max(amax, std::fabs(row[j]));
        }
        // Round the scale to fp16 FIRST, then quantize against the rounded
        // value: dequantization then reproduces exactly what was encoded.
        const half_t scale_h = FloatToHalf(amax / 127.0f);
        const float scale = HalfToFloat(scale_h);
        out->own_scales_[r] = scale_h;
        int8_t* qrow = out->own_i8_.data() + r * width;
        if (scale == 0.0f || !std::isfinite(scale)) {
          std::fill(qrow, qrow + width, static_cast<int8_t>(0));
          continue;
        }
        for (int64_t j = 0; j < width; ++j) {
          const float q = std::nearbyint(row[j] / scale);
          qrow[j] = static_cast<int8_t>(
              std::clamp(q, -127.0f, 127.0f));
        }
      }
      out->data_ = out->own_i8_.data();
      out->scales_ = out->own_scales_.data();
      break;
    }
  }
  ARMNET_CHECK(out->data_ != nullptr || rows * width == 0);
  return out;
}

std::shared_ptr<QuantizedTable> QuantizedTable::FromRaw(
    QuantKind kind, int64_t rows, int64_t width, const void* data,
    const half_t* scales, std::shared_ptr<const void> owner) {
  ARMNET_CHECK(rows >= 0 && width >= 0);
  ARMNET_CHECK(rows * width == 0 || data != nullptr);
  if (kind == QuantKind::kInt8) {
    ARMNET_CHECK(rows == 0 || scales != nullptr)
        << "int8 table needs per-row scales";
  } else {
    ARMNET_CHECK(scales == nullptr)
        << QuantKindName(kind) << " table carries no scales";
  }
  auto out = std::shared_ptr<QuantizedTable>(new QuantizedTable());
  out->kind_ = kind;
  out->rows_ = rows;
  out->width_ = width;
  out->data_ = data;
  out->scales_ = scales;
  out->owner_ = std::move(owner);
  return out;
}

void QuantizedTable::DequantizeRow(int64_t id, float* out) const {
  ARMNET_DCHECK(id >= 0 && id < rows_);
  switch (kind_) {
    case QuantKind::kFloat32:
      std::memcpy(out, static_cast<const float*>(data_) + id * width_,
                  width_ * sizeof(float));
      break;
    case QuantKind::kFloat16:
      kernels::DequantRowF16(static_cast<const uint16_t*>(data_) + id * width_,
                             out, width_);
      break;
    case QuantKind::kInt8:
      kernels::DequantRowI8(static_cast<const int8_t*>(data_) + id * width_,
                            HalfToFloat(scales_[id]), out, width_);
      break;
  }
}

void QuantizedTable::CachedRow(int64_t id, float* out) const {
  Cache* cache = cache_.get();
  CacheShard& shard = *cache->shards[id % kCacheShards];
  const int64_t slot = (id / kCacheShards) % cache->slots_per_shard;
  MutexLock lock(shard.mu);
  float* slot_row = shard.slot_row.data() + slot * width_;
  if (shard.slot_id[slot] == id) {
    cache->hits.fetch_add(1, std::memory_order_relaxed);
  } else {
    cache->misses.fetch_add(1, std::memory_order_relaxed);
    DequantizeRow(id, slot_row);
    shard.slot_id[slot] = id;
  }
  std::memcpy(out, slot_row, width_ * sizeof(float));
}

void QuantizedTable::GatherRowsOut(const std::vector<int64_t>& ids,
                                   Tensor& out) const {
  ARMNET_DCHECK(out.dim(0) == static_cast<int64_t>(ids.size()) &&
                out.dim(1) == width_);
  tmath::CheckRowIds(ids, rows_, "QuantizedGatherRows");
  if (ids.empty() || width_ == 0) return;
  float* dst = out.data();
  if (cache_ != nullptr) {
    for (size_t i = 0; i < ids.size(); ++i) {
      CachedRow(ids[i], dst + static_cast<int64_t>(i) * width_);
    }
    return;
  }
  for (size_t i = 0; i < ids.size(); ++i) {
    DequantizeRow(ids[i], dst + static_cast<int64_t>(i) * width_);
  }
}

Tensor QuantizedTable::GatherRows(const std::vector<int64_t>& ids) const {
  Tensor out{Shape({static_cast<int64_t>(ids.size()), width_})};
  GatherRowsOut(ids, out);
  return out;
}

void QuantizedTable::EnableHotRowCache(int64_t slots) {
  ARMNET_CHECK_GT(slots, 0);
  auto cache = std::make_unique<Cache>();
  cache->slots_per_shard = (slots + kCacheShards - 1) / kCacheShards;
  cache->shards.reserve(kCacheShards);
  for (int64_t s = 0; s < kCacheShards; ++s) {
    auto shard = std::make_unique<CacheShard>();
    {
      MutexLock lock(shard->mu);
      shard->slot_id.assign(cache->slots_per_shard, -1);
      shard->slot_row.assign(cache->slots_per_shard * width_, 0.0f);
    }
    cache->shards.push_back(std::move(shard));
  }
  cache_ = std::move(cache);
}

uint64_t QuantizedTable::cache_hits() const {
  return cache_ ? cache_->hits.load(std::memory_order_relaxed) : 0;
}

uint64_t QuantizedTable::cache_misses() const {
  return cache_ ? cache_->misses.load(std::memory_order_relaxed) : 0;
}

}  // namespace armnet
