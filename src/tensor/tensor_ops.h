#ifndef ARMNET_TENSOR_TENSOR_OPS_H_
#define ARMNET_TENSOR_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

// Pure tensor-level math (no gradient tracking). The autograd layer in
// src/autograd/ composes these into differentiable ops.
//
// Elementwise binary ops broadcast NumPy-style. MatMul treats inputs as
// stacks of matrices ([..., M, K] x [..., K, N]) and broadcasts the leading
// batch dimensions. All functions allocate and return new tensors unless
// documented otherwise.
//
// Every op the execution-plan VM (src/plan/) replays also has a
// destination-passing `*Out` variant writing into a caller-provided tensor
// (an arena view at steady state). The allocating form is a thin wrapper
// over the same core loop, so the compiled and interpreted paths are
// bit-identical by construction.

namespace armnet::tmath {

// --- Elementwise binary (broadcasting) ------------------------------------
Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
Tensor Div(const Tensor& a, const Tensor& b);
Tensor Maximum(const Tensor& a, const Tensor& b);

// --- Elementwise with scalar ----------------------------------------------
Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
// Elementwise a^p (a must be >= 0 unless p is an integer).
Tensor PowScalar(const Tensor& a, float p);

// --- Elementwise unary ----------------------------------------------------
Tensor Neg(const Tensor& a);
Tensor Exp(const Tensor& a);
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Abs(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Tanh(const Tensor& a);
Tensor Relu(const Tensor& a);
// max(a, lo) elementwise.
Tensor ClampMin(const Tensor& a, float lo);
Tensor Clamp(const Tensor& a, float lo, float hi);

// --- Matrix multiply -------------------------------------------------------
// [..., M, K] x [..., K, N] -> [..., M, N], broadcasting batch dims.
// Rank-1 inputs are NOT auto-promoted; callers reshape explicitly.
Tensor MatMul(const Tensor& a, const Tensor& b);

// Swaps two dimensions (materializes a copy).
Tensor Transpose(const Tensor& a, int dim0, int dim1);

// --- Reductions -------------------------------------------------------------
// Sum of all elements as a rank-0 tensor.
Tensor SumAll(const Tensor& a);
// Sum along `axis` (negative counts from the end).
Tensor Sum(const Tensor& a, int axis, bool keepdim);
Tensor Mean(const Tensor& a, int axis, bool keepdim);
// Reduces `a` to `target` by summing over broadcast dimensions; inverse of
// broadcasting, used in op backward passes. `a`'s shape must be the result
// of broadcasting `target` against something.
Tensor SumTo(const Tensor& a, const Shape& target);
// Materializes `a` broadcast to `target` (a must be broadcastable to it).
Tensor BroadcastTo(const Tensor& a, const Shape& target);

// --- Structural -------------------------------------------------------------
Tensor Concat(const std::vector<Tensor>& parts, int axis);
// Elements [start, start+length) along `axis`.
Tensor Slice(const Tensor& a, int axis, int64_t start, int64_t length);
// Inverse of Slice for gradients: returns zeros of `full` shape with `a`
// pasted at [start, start+a.dim(axis)) along `axis`.
Tensor SliceBackward(const Tensor& a, const Shape& full, int axis,
                     int64_t start);

// Picks `indices` along `axis`: out[..., k, ...] = a[..., indices[k], ...].
Tensor IndexSelect(const Tensor& a, int axis,
                   const std::vector<int64_t>& indices);
// Gradient of IndexSelect: scatter-adds `g` back into a zeros tensor of
// shape `full` along `axis` at `indices` (duplicates accumulate).
Tensor IndexSelectBackward(const Tensor& g, const Shape& full, int axis,
                           const std::vector<int64_t>& indices);

// --- Indexed ----------------------------------------------------------------
// Aborts (naming the first offending id) unless every id is in [0, rows).
// One branch-free pre-scan over the ids; the gather/scatter copy loops run
// unchecked after it, which is the hot-path contract from PR 5 kept at a
// hoisted cost (see bench_micro_kernels BM_GatherRows).
void CheckRowIds(const std::vector<int64_t>& ids, int64_t rows,
                 const char* op_name);
// Rows of `table` ([M, width]) selected by `ids` -> [ids.size(), width].
Tensor GatherRows(const Tensor& table, const std::vector<int64_t>& ids);
// dest[ids[i], :] += src[i, :]; dest is modified in place.
void ScatterAddRows(Tensor& dest, const std::vector<int64_t>& ids,
                    const Tensor& src);

// --- Softmax ----------------------------------------------------------------
// Numerically stable softmax over the last dimension.
Tensor SoftmaxLastDim(const Tensor& a);

// --- Destination-passing variants -------------------------------------------
// Each writes the full result into `out`, whose shape must equal the result
// shape of the allocating form (checked). `out` may be an arena view; every
// element is overwritten (SumOut zero-fills its window first), so the buffer
// may be acquired without the zeroing pass. Unless documented, `out` must
// not alias an input.
//
// In-place aliasing contract: for AddOut/SubOut/MulOut/DivOut, `out` MAY
// alias `a` or `b` when that operand's shape equals the output shape (the
// walk reads each aliased element exactly once, before writing it) — the
// VM's fused epilogues rely on this.
void AddOut(const Tensor& a, const Tensor& b, Tensor& out);
void SubOut(const Tensor& a, const Tensor& b, Tensor& out);
void MulOut(const Tensor& a, const Tensor& b, Tensor& out);
void DivOut(const Tensor& a, const Tensor& b, Tensor& out);

// Unary/scalar forms; `out` may alias `a` (same shape, elementwise).
void AddScalarOut(const Tensor& a, float s, Tensor& out);
void MulScalarOut(const Tensor& a, float s, Tensor& out);
void PowScalarOut(const Tensor& a, float p, Tensor& out);
void ExpOut(const Tensor& a, Tensor& out);
void LogOut(const Tensor& a, Tensor& out);
void AbsOut(const Tensor& a, Tensor& out);
void ReluOut(const Tensor& a, Tensor& out);
// Leaky ReLU with the given negative-side slope (the autograd op's forward).
void LeakyReluOut(const Tensor& a, float slope, Tensor& out);
void ClampMinOut(const Tensor& a, float lo, Tensor& out);
// Elementwise a*a (the autograd Square op's forward: Mul(a, a)).
void SquareOut(const Tensor& a, Tensor& out);

void MatMulOut(const Tensor& a, const Tensor& b, Tensor& out);
void TransposeOut(const Tensor& a, int dim0, int dim1, Tensor& out);
void SumOut(const Tensor& a, int axis, bool keepdim, Tensor& out);
void SumAllOut(const Tensor& a, Tensor& out);
void ConcatOut(const std::vector<const Tensor*>& parts, int axis, Tensor& out);
void SliceOut(const Tensor& a, int axis, int64_t start, int64_t length,
              Tensor& out);
void IndexSelectOut(const Tensor& a, int axis,
                    const std::vector<int64_t>& indices, Tensor& out);
void GatherRowsOut(const Tensor& table, const std::vector<int64_t>& ids,
                   Tensor& out);
void SoftmaxLastDimOut(const Tensor& a, Tensor& out);

}  // namespace armnet::tmath

#endif  // ARMNET_TENSOR_TENSOR_OPS_H_
