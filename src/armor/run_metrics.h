#ifndef ARMNET_ARMOR_RUN_METRICS_H_
#define ARMNET_ARMOR_RUN_METRICS_H_

#include <string>
#include <utility>
#include <vector>

#include "autograd/grad_mode.h"
#include "tensor/storage_pool.h"
#include "util/profiler.h"

namespace armnet::armor {

// One unified observability snapshot (DESIGN.md §10): the autograd tape
// counters, an optional TensorPool's allocator counters, and — when the
// profiler is compiled in and enabled — every scope timing and invocation
// counter recorded so far. Captured by benches after a measured region and
// by the trainer per epoch; serialized into BENCH_*.json and the epoch
// telemetry JSONL.
struct RunMetrics {
  autograd::TapeStats tape;
  bool has_pool = false;
  TensorPoolStats pool;  // zeros unless a pool was supplied at capture
  std::vector<prof::ScopeStats> scopes;
  std::vector<prof::CounterStats> counters;
  // Prediction-service counters (serve::PredictionService::CounterSnapshot),
  // present when a service was supplied at capture. Unlike `counters` these
  // are always populated — service counters are plain atomics, not gated on
  // the profiler being compiled in.
  bool has_serve = false;
  std::vector<prof::CounterStats> serve;
  // Continuous serving operating-point gauges (adaptive batch wait, windowed
  // p99 — serve::PredictionService::GaugeSnapshot). Counters answer "how
  // many"; these answer "where is the control loop sitting right now".
  std::vector<std::pair<std::string, double>> serve_gauges;
  // Compiled-plan counters (plan::CompiledPredictor::Stats, pre-extracted as
  // a name/count list — serve::PredictionService::PlanCounterSnapshot or a
  // bench's own predictor). Present when a compiled predictor was in play.
  bool has_plan = false;
  std::vector<prof::CounterStats> plan;
  // Drift/shadow gauges (serve::PredictionService::DriftMetricsSnapshot):
  // per-field windowed OOV/clamp rates vs baseline, score PSI, and the
  // shadow delta statistics. Present when a service was captured with its
  // drift snapshot (the "drift" section of the JSON).
  bool has_drift = false;
  std::vector<std::pair<std::string, double>> drift;
};

// Snapshots the process-wide tape stats and profiler registry, plus `pool`'s
// counters when non-null. Tape and profiler counters are cumulative across
// threads since their last Reset; bracket the workload with
// autograd::ResetTapeStats() / prof::Reset() for per-region deltas.
RunMetrics CaptureRunMetrics(const TensorPool* pool = nullptr);

// As above, additionally embedding a prediction service's counter snapshot
// (the "serve" section of the JSON), optionally its operating-point gauges
// (the "serve_gauges" section), and optionally compiled-plan counters (the
// "plan" section, PredictionService::PlanCounterSnapshot). Takes the
// pre-extracted lists so armor depends on neither the serve nor the plan
// library.
RunMetrics CaptureRunMetrics(
    const TensorPool* pool, std::vector<prof::CounterStats> serve_counters,
    std::vector<std::pair<std::string, double>> serve_gauges = {},
    std::vector<prof::CounterStats> plan_counters = {},
    std::vector<std::pair<std::string, double>> drift_metrics = {});

// Compact single-line JSON object:
//   {"tape":{"nodes_recorded":N,"nodes_elided":N},
//    "pool":{"hits":N,"misses":N,"returns":N,"dropped":N,
//            "bytes_served":N,"bytes_pooled":N},          // if has_pool
//    "scopes":[{"name":s,"count":N,"total_ms":f,"min_ms":f,"max_ms":f,
//               "p50_ms":f,"p99_ms":f},...],
//    "counters":[{"name":s,"count":N},...],
//    "serve":[{"name":s,"count":N},...],                  // if has_serve
//    "serve_gauges":[{"name":s,"value":f},...],           // if non-empty
//    "plan":[{"name":s,"count":N},...],                   // if has_plan
//    "drift":[{"name":s,"value":f},...]}                  // if has_drift
std::string RunMetricsJson(const RunMetrics& metrics);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_RUN_METRICS_H_
