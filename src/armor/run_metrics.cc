#include "armor/run_metrics.h"

#include <utility>

#include "util/json.h"

namespace armnet::armor {

RunMetrics CaptureRunMetrics(const TensorPool* pool) {
  RunMetrics metrics;
  metrics.tape = autograd::GetTapeStats();
  if (pool != nullptr) {
    metrics.has_pool = true;
    metrics.pool = pool->stats();
  }
  metrics.scopes = prof::ScopeSnapshot();
  metrics.counters = prof::CounterSnapshot();
  return metrics;
}

RunMetrics CaptureRunMetrics(
    const TensorPool* pool, std::vector<prof::CounterStats> serve_counters,
    std::vector<std::pair<std::string, double>> serve_gauges,
    std::vector<prof::CounterStats> plan_counters,
    std::vector<std::pair<std::string, double>> drift_metrics) {
  RunMetrics metrics = CaptureRunMetrics(pool);
  metrics.has_serve = true;
  metrics.serve = std::move(serve_counters);
  metrics.serve_gauges = std::move(serve_gauges);
  if (!plan_counters.empty()) {
    metrics.has_plan = true;
    metrics.plan = std::move(plan_counters);
  }
  if (!drift_metrics.empty()) {
    metrics.has_drift = true;
    metrics.drift = std::move(drift_metrics);
  }
  return metrics;
}

std::string RunMetricsJson(const RunMetrics& metrics) {
  JsonWriter w;
  w.BeginObject();
  w.Key("tape").BeginObject();
  w.Key("nodes_recorded").Int(metrics.tape.nodes_recorded);
  w.Key("nodes_elided").Int(metrics.tape.nodes_elided);
  w.EndObject();
  if (metrics.has_pool) {
    w.Key("pool").BeginObject();
    w.Key("hits").Int(metrics.pool.hits);
    w.Key("misses").Int(metrics.pool.misses);
    w.Key("returns").Int(metrics.pool.returns);
    w.Key("dropped").Int(metrics.pool.dropped);
    w.Key("bytes_served").Int(metrics.pool.bytes_served);
    w.Key("bytes_pooled").Int(metrics.pool.bytes_pooled);
    w.EndObject();
  }
  w.Key("scopes").BeginArray();
  for (const prof::ScopeStats& s : metrics.scopes) {
    w.BeginObject();
    w.Key("name").String(s.name);
    w.Key("count").Int(s.count);
    w.Key("total_ms").Double(s.total_ms);
    w.Key("min_ms").Double(s.min_ms);
    w.Key("max_ms").Double(s.max_ms);
    w.Key("p50_ms").Double(s.p50_ms);
    w.Key("p99_ms").Double(s.p99_ms);
    w.EndObject();
  }
  w.EndArray();
  w.Key("counters").BeginArray();
  for (const prof::CounterStats& c : metrics.counters) {
    w.BeginObject();
    w.Key("name").String(c.name);
    w.Key("count").Int(c.count);
    w.EndObject();
  }
  w.EndArray();
  if (metrics.has_serve) {
    w.Key("serve").BeginArray();
    for (const prof::CounterStats& c : metrics.serve) {
      w.BeginObject();
      w.Key("name").String(c.name);
      w.Key("count").Int(c.count);
      w.EndObject();
    }
    w.EndArray();
  }
  if (!metrics.serve_gauges.empty()) {
    w.Key("serve_gauges").BeginArray();
    for (const auto& [name, value] : metrics.serve_gauges) {
      w.BeginObject();
      w.Key("name").String(name);
      w.Key("value").Double(value);
      w.EndObject();
    }
    w.EndArray();
  }
  if (metrics.has_plan) {
    w.Key("plan").BeginArray();
    for (const prof::CounterStats& c : metrics.plan) {
      w.BeginObject();
      w.Key("name").String(c.name);
      w.Key("count").Int(c.count);
      w.EndObject();
    }
    w.EndArray();
  }
  if (metrics.has_drift) {
    w.Key("drift").BeginArray();
    for (const auto& [name, value] : metrics.drift) {
      w.BeginObject();
      w.Key("name").String(name);
      w.Key("value").Double(value);
      w.EndObject();
    }
    w.EndArray();
  }
  w.EndObject();
  return w.str();
}

}  // namespace armnet::armor
