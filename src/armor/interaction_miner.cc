#include "armor/interaction_miner.h"

#include <algorithm>
#include <unordered_map>

#include "autograd/grad_mode.h"
#include "data/batcher.h"
#include "tensor/storage_pool.h"

namespace armnet::armor {

std::vector<MinedInteraction> MineInteractions(core::ArmNet& model,
                                               const data::Dataset& dataset,
                                               const MinerConfig& config) {
  nn::TrainingModeGuard eval_mode(model, /*training=*/false);
  NoGradGuard no_grad;
  TensorPool pool;
  ScopedTensorPool scoped_pool(pool);
  Rng rng(0);

  // Key: fields joined by ','. Value: occurrence count over all
  // (instance, neuron) pairs.
  std::unordered_map<std::string, int64_t> counts;

  data::Batcher batcher(dataset, config.batch_size, /*shuffle=*/false,
                        Rng(0));
  data::Batch batch;
  int64_t instances = 0;
  std::vector<int> support;
  while (batcher.Next(&batch)) {
    core::ArmModule::Output trace;
    (void)model.ForwardWithTrace(batch, rng, &trace);
    const Tensor& gates = trace.gates.value();  // [B, K, o, m]
    const int64_t m = gates.dim(-1);
    const int64_t neurons = gates.numel() / (batch.batch_size * m);
    for (int64_t i = 0; i < batch.batch_size; ++i) {
      for (int64_t n = 0; n < neurons; ++n) {
        const float* row = gates.data() + (i * neurons + n) * m;
        support.clear();
        for (int64_t j = 0; j < m; ++j) {
          if (row[j] > config.gate_threshold) {
            support.push_back(static_cast<int>(j));
          }
        }
        if (support.empty() ||
            static_cast<int>(support.size()) > config.max_order) {
          continue;
        }
        std::string key;
        for (size_t s = 0; s < support.size(); ++s) {
          if (s > 0) key += ',';
          key += std::to_string(support[s]);
        }
        ++counts[key];
      }
    }
    instances += batch.batch_size;
  }

  std::vector<MinedInteraction> mined;
  mined.reserve(counts.size());
  for (const auto& [key, count] : counts) {
    MinedInteraction interaction;
    size_t start = 0;
    while (start <= key.size()) {
      const size_t comma = key.find(',', start);
      const size_t end = comma == std::string::npos ? key.size() : comma;
      interaction.fields.push_back(
          std::stoi(key.substr(start, end - start)));
      if (comma == std::string::npos) break;
      start = comma + 1;
    }
    interaction.frequency =
        instances > 0 ? static_cast<double>(count) / instances : 0;
    mined.push_back(std::move(interaction));
  }
  std::sort(mined.begin(), mined.end(),
            [](const MinedInteraction& a, const MinedInteraction& b) {
              return a.frequency > b.frequency;
            });
  if (static_cast<int>(mined.size()) > config.top_k) {
    mined.resize(static_cast<size_t>(config.top_k));
  }
  return mined;
}

std::string FormatInteraction(const MinedInteraction& interaction,
                              const data::Schema& schema) {
  std::string out = "(";
  for (size_t i = 0; i < interaction.fields.size(); ++i) {
    if (i > 0) out += ", ";
    out += schema.field(interaction.fields[i]).name;
  }
  return out + ")";
}

}  // namespace armnet::armor
