#ifndef ARMNET_ARMOR_CHECKPOINT_H_
#define ARMNET_ARMOR_CHECKPOINT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "tensor/tensor.h"
#include "util/rng.h"
#include "util/status.h"

namespace armnet::armor {

// Epoch-granular training checkpoint: everything Fit() needs to continue a
// run exactly where it stopped — model weights and buffers, the best
// snapshot so far, Adam moments, RNG streams, and the early-stopping
// bookkeeping. Serialized through nn::StateWriter/StateReader, so the file
// is CRC-protected and written atomically (see nn/serialize.h).
struct TrainCheckpoint {
  // Config fingerprint: resume refuses a checkpoint written under a
  // different training setup instead of silently mixing runs.
  uint64_t seed = 0;
  uint32_t task = 0;
  int64_t batch_size = 0;

  // Progress. `epochs_completed` counts fully finished epochs; resume
  // continues with epoch `epochs_completed + 1`.
  int64_t epochs_completed = 0;
  float learning_rate = 0;  // current (possibly backed-off) LR
  bool has_best = false;
  double best_metric = 0;
  int64_t epochs_since_best = 0;
  int64_t divergence_recoveries = 0;
  std::vector<double> history;  // validation metric per completed epoch

  // RNG streams, captured after the checkpointed epoch finished.
  Rng::State dropout_rng;
  Rng::State batcher_rng;
  // The batcher's row permutation at capture time. Epochs reshuffle in
  // place, so the next epoch's visit order depends on both the RNG state
  // and this permutation.
  std::vector<int64_t> batcher_order;

  // Model and optimizer state (deep copies, traversal order).
  std::vector<Tensor> params;
  std::vector<Tensor> buffers;
  std::vector<Tensor> best_params;
  std::vector<Tensor> best_buffers;
  int64_t adam_step = 0;
  std::vector<Tensor> adam_m;
  std::vector<Tensor> adam_v;
};

// Location of the checkpoint file inside a checkpoint directory.
std::string TrainCheckpointPath(const std::string& checkpoint_dir);

// Atomically persists `checkpoint` into `checkpoint_dir` (created if
// missing). A crash mid-save leaves the previous checkpoint intact.
Status SaveTrainCheckpoint(const TrainCheckpoint& checkpoint,
                           const std::string& checkpoint_dir);

// True if `checkpoint_dir` holds a checkpoint file (readable or not).
bool TrainCheckpointExists(const std::string& checkpoint_dir);

// Loads and validates the checkpoint in `checkpoint_dir`. Any corruption,
// truncation, or version mismatch yields a non-OK Status and no partial
// data.
StatusOr<TrainCheckpoint> LoadTrainCheckpoint(
    const std::string& checkpoint_dir);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_CHECKPOINT_H_
