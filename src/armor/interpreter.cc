#include "armor/interpreter.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "autograd/grad_mode.h"
#include "tensor/storage_pool.h"

namespace armnet::armor {

namespace {

void NormalizeToOne(std::vector<double>& v) {
  double total = 0;
  for (double x : v) total += x;
  if (total <= 0) return;
  for (double& x : v) x /= total;
}

}  // namespace

std::vector<double> ArmInterpreter::GlobalFieldImportance() const {
  const core::ArmModule& arm = model_->arm_module();
  const Tensor& values = arm.attention_values().value();  // [K, o, m]
  const int64_t m = values.dim(-1);
  const int64_t neurons = values.numel() / m;
  std::vector<double> importance(static_cast<size_t>(m), 0.0);
  for (int64_t n = 0; n < neurons; ++n) {
    for (int64_t j = 0; j < m; ++j) {
      importance[static_cast<size_t>(j)] += std::abs(values[n * m + j]);
    }
  }
  NormalizeToOne(importance);
  return importance;
}

std::vector<double> ArmInterpreter::GlobalFieldImportance(
    const data::Dataset& dataset, int64_t sample_limit,
    int64_t batch_size) const {
  nn::TrainingModeGuard eval_mode(*model_, /*training=*/false);
  NoGradGuard no_grad;
  TensorPool pool;
  ScopedTensorPool scoped_pool(pool);
  Rng rng(0);

  const int m = dataset.num_fields();
  std::vector<double> importance(static_cast<size_t>(m), 0.0);
  const int64_t limit = std::min<int64_t>(dataset.size(), sample_limit);
  std::vector<int64_t> rows;
  for (int64_t start = 0; start < limit; start += batch_size) {
    rows.clear();
    for (int64_t r = start; r < std::min(limit, start + batch_size); ++r) {
      rows.push_back(r);
    }
    data::Batch batch;
    dataset.Gather(rows, &batch);
    core::ArmModule::Output trace;
    (void)model_->ForwardWithTrace(batch, rng, &trace);
    const Tensor& weights = trace.interaction_weights.value();
    const int64_t groups = weights.numel() / m;
    for (int64_t g = 0; g < groups; ++g) {
      for (int64_t j = 0; j < m; ++j) {
        importance[static_cast<size_t>(j)] += std::abs(weights[g * m + j]);
      }
    }
  }
  NormalizeToOne(importance);
  return importance;
}

ArmInterpreter::LocalAttribution ArmInterpreter::Explain(
    const data::Dataset& dataset, int64_t row, int top_neurons) const {
  nn::TrainingModeGuard eval_mode(*model_, /*training=*/false);
  NoGradGuard no_grad;
  TensorPool pool;
  ScopedTensorPool scoped_pool(pool);
  data::Batch batch;
  dataset.Gather({row}, &batch);
  Rng rng(0);
  core::ArmModule::Output trace;
  (void)model_->ForwardWithTrace(batch, rng, &trace);

  // Interaction weights for the single instance: [1, K, o, m].
  const Tensor& weights = trace.interaction_weights.value();
  const int64_t m = weights.dim(-1);
  const int64_t neurons = weights.numel() / m;

  LocalAttribution attribution;
  attribution.field_importance.assign(static_cast<size_t>(m), 0.0);
  std::vector<double> neuron_mass(static_cast<size_t>(neurons), 0.0);
  for (int64_t n = 0; n < neurons; ++n) {
    for (int64_t j = 0; j < m; ++j) {
      const double w = std::abs(weights[n * m + j]);
      attribution.field_importance[static_cast<size_t>(j)] += w;
      neuron_mass[static_cast<size_t>(n)] += w;
    }
  }
  NormalizeToOne(attribution.field_importance);

  // Pick the neurons contributing the most attribution mass.
  std::vector<int64_t> order(static_cast<size_t>(neurons));
  std::iota(order.begin(), order.end(), int64_t{0});
  std::sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    return neuron_mass[static_cast<size_t>(a)] >
           neuron_mass[static_cast<size_t>(b)];
  });
  const int take = std::min<int>(top_neurons, static_cast<int>(neurons));
  for (int t = 0; t < take; ++t) {
    const int64_t n = order[static_cast<size_t>(t)];
    std::vector<double> per_field(static_cast<size_t>(m));
    for (int64_t j = 0; j < m; ++j) {
      per_field[static_cast<size_t>(j)] = std::abs(weights[n * m + j]);
    }
    attribution.per_neuron.push_back(std::move(per_field));
    attribution.neuron_indices.push_back(n);
  }
  return attribution;
}

}  // namespace armnet::armor
