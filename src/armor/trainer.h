#ifndef ARMNET_ARMOR_TRAINER_H_
#define ARMNET_ARMOR_TRAINER_H_

#include <cstdint>
#include <vector>

#include "armor/evaluator.h"
#include "core/tabular.h"
#include "data/split.h"

namespace armnet::armor {

// Learning task: drives the loss and the early-stopping metric (§3.3 —
// "ARM-Net can be adopted in various learning tasks, such as
// classification, regression with a proper objective function").
enum class Task {
  kClassification,  // binary cross entropy, early stop on validation AUC
  kRegression,      // mean squared error, early stop on validation RMSE
};

// Training protocol of the paper's Section 4.1: Adam, early stopping on
// the validation metric, best-epoch weights (and buffers) restored before
// the final test evaluation.
struct TrainConfig {
  Task task = Task::kClassification;
  int max_epochs = 12;
  int64_t batch_size = 512;
  float learning_rate = 1e-3f;
  float weight_decay = 0.0f;
  // Stop after this many epochs without validation improvement.
  int patience = 3;
  double grad_clip_norm = 50.0;
  uint64_t seed = 7;
  bool verbose = false;
  // 0 = full epochs; otherwise caps steps per epoch (quick benches).
  int64_t max_batches_per_epoch = 0;
};

struct TrainResult {
  // Best validation value of the selection metric, oriented so higher is
  // better: AUC for classification, -RMSE for regression.
  double best_validation_metric = 0;
  // Convenience alias valid for classification runs.
  double best_validation_auc = 0;
  EvalResult test;
  int epochs_run = 0;
  std::vector<double> validation_metric_history;
  double train_seconds = 0;
};

// Fits `model` on splits.train, early-stops on splits.validation, and
// reports metrics on splits.test with the best validation weights.
TrainResult Fit(models::TabularModel& model, const data::Splits& splits,
                const TrainConfig& config);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_TRAINER_H_
