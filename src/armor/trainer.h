#ifndef ARMNET_ARMOR_TRAINER_H_
#define ARMNET_ARMOR_TRAINER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "armor/evaluator.h"
#include "core/tabular.h"
#include "data/split.h"

namespace armnet::data {
class FeatureSpace;
}  // namespace armnet::data

namespace armnet::armor {

// Learning task: drives the loss and the early-stopping metric (§3.3 —
// "ARM-Net can be adopted in various learning tasks, such as
// classification, regression with a proper objective function").
enum class Task {
  kClassification,  // binary cross entropy, early stop on validation AUC
  kRegression,      // mean squared error, early stop on validation RMSE
};

// Training protocol of the paper's Section 4.1: Adam, early stopping on
// the validation metric, best-epoch weights (and buffers) restored before
// the final test evaluation.
struct TrainConfig {
  Task task = Task::kClassification;
  int max_epochs = 12;
  int64_t batch_size = 512;
  float learning_rate = 1e-3f;
  float weight_decay = 0.0f;
  // Stop after this many epochs without validation improvement.
  int patience = 3;
  double grad_clip_norm = 50.0;
  uint64_t seed = 7;
  bool verbose = false;
  // 0 = full epochs; otherwise caps steps per epoch (quick benches).
  int64_t max_batches_per_epoch = 0;

  // --- Fault tolerance (see DESIGN.md §8) ------------------------------
  // Directory for epoch-granular training checkpoints; empty disables
  // them. After every completed epoch the full run state (weights,
  // buffers, best snapshot, Adam moments, RNG streams, early-stopping
  // bookkeeping) is persisted atomically. When Fit() starts and the
  // directory already holds a checkpoint written under the same seed,
  // task, and batch size, the run resumes from it and replays the
  // remaining epochs bit-identically to an uninterrupted run.
  std::string checkpoint_dir;
  // Divergence recovery: a non-finite loss, non-finite gradient norm, or
  // gradient-norm spike rolls the model and optimizer back to the end of
  // the last good epoch and retries with the learning rate multiplied by
  // `divergence_lr_backoff`. After `max_divergence_retries` rollbacks the
  // run stops and reports the failure in TrainResult.
  int max_divergence_retries = 3;
  float divergence_lr_backoff = 0.5f;
  // A pre-clip gradient norm above `grad_spike_factor` times the running
  // mean counts as divergence, after a short warmup. 0 disables spike
  // detection (non-finite losses/gradients are always caught).
  double grad_spike_factor = 1e4;
  // Wall-clock watchdog: stop training (keeping the best weights and the
  // latest checkpoint) once the run exceeds this many seconds. 0 = off.
  double max_train_seconds = 0;

  // --- Observability (see DESIGN.md §10) -------------------------------
  // JSONL file appended with one record per completed epoch: train loss,
  // validation metrics, mean gradient norm, learning rate, epoch wall
  // time, tape/pool counters, and the incidents raised since the previous
  // record. Empty derives "<checkpoint_dir>/epochs.jsonl" when checkpoints
  // are on; telemetry is off when both are empty. Write failures disable
  // telemetry for the rest of the run (with an incident) — they never
  // abort training.
  std::string telemetry_path;

  // --- Serving export (see DESIGN.md §11) -------------------------------
  // Directory receiving the deployable pair after the best-epoch weights
  // are restored: "model.state" (kStateKindModel) and, when
  // `export_feature_space` is set, "serving.artifact"
  // (kStateKindServingArtifact — the schema/vocab/range mapping the
  // prediction service replays). Empty falls back to checkpoint_dir;
  // export is off when both are empty. Export failures are incidents,
  // never training aborts.
  std::string export_dir;
  // Train-time feature mapping to persist alongside the weights
  // (non-owning; typically filled by LoadCsvWithVocab). Null skips the
  // artifact.
  const data::FeatureSpace* export_feature_space = nullptr;
  // Embed a drift reference in the exported serving artifact (DESIGN.md
  // §16): the best-epoch model's score histogram over the validation split
  // plus per-field baseline OOV/clamp rates (zero by construction — the
  // vocabulary and ranges come from the training data). The prediction
  // service compares live windows against it; without the reference it
  // serves with drift monitoring disabled. Ignored when
  // export_feature_space is null.
  bool export_drift_reference = true;
};

struct TrainResult {
  // Best validation value of the selection metric, oriented so higher is
  // better: AUC for classification, -RMSE for regression.
  double best_validation_metric = 0;
  // Convenience alias valid for classification runs.
  double best_validation_auc = 0;
  EvalResult test;
  int epochs_run = 0;
  std::vector<double> validation_metric_history;
  double train_seconds = 0;

  // --- Robustness report -----------------------------------------------
  // Rollback + learning-rate-backoff recoveries performed.
  int divergence_recoveries = 0;
  // True when divergence persisted past max_divergence_retries and the
  // run stopped early with the last good weights.
  bool divergence_gave_up = false;
  // True when the wall-clock watchdog stopped the run.
  bool watchdog_fired = false;
  // Completed epochs restored from checkpoint_dir (0 = fresh start).
  int resumed_from_epoch = 0;
  // Human-readable log of every fault handled during the run (rollbacks,
  // non-finite validation metrics, checkpoint problems, watchdog).
  std::vector<std::string> incidents;
};

// Fits `model` on splits.train, early-stops on splits.validation, and
// reports metrics on splits.test with the best validation weights.
TrainResult Fit(models::TabularModel& model, const data::Splits& splits,
                const TrainConfig& config);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_TRAINER_H_
