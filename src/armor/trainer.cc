#include "armor/trainer.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <limits>

#include "armor/checkpoint.h"
#include "autograd/grad_mode.h"
#include "data/batcher.h"
#include "data/feature_space.h"
#include "nn/serialize.h"
#include "optim/adam.h"
#include "util/csv.h"
#include "util/fault_injection.h"
#include "util/json.h"
#include "util/profiler.h"
#include "util/stopwatch.h"
#include "util/string_util.h"

namespace armnet::armor {

namespace {

// Deep copy of the full model state: parameters plus non-learnable buffers
// (batch-norm running statistics), so best-epoch restoration is exact.
struct ModelSnapshot {
  std::vector<Tensor> params;
  std::vector<Tensor> buffers;
};

ModelSnapshot Snapshot(const std::vector<Variable>& params,
                       const std::vector<Tensor>& buffers) {
  ModelSnapshot snapshot;
  snapshot.params.reserve(params.size());
  for (const Variable& p : params) snapshot.params.push_back(p.value().Clone());
  snapshot.buffers.reserve(buffers.size());
  for (const Tensor& b : buffers) snapshot.buffers.push_back(b.Clone());
  return snapshot;
}

void Restore(std::vector<Variable>& params, std::vector<Tensor>& buffers,
             const ModelSnapshot& snapshot) {
  ARMNET_CHECK_EQ(params.size(), snapshot.params.size());
  ARMNET_CHECK_EQ(buffers.size(), snapshot.buffers.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& dst = params[i].mutable_value();
    const Tensor& src = snapshot.params[i];
    ARMNET_CHECK(dst.shape() == src.shape());
    std::copy(src.data(), src.data() + src.numel(), dst.data());
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    // Buffers are shared handles into the modules' state.
    Tensor& dst = buffers[i];
    const Tensor& src = snapshot.buffers[i];
    ARMNET_CHECK(dst.shape() == src.shape());
    std::copy(src.data(), src.data() + src.numel(), dst.data());
  }
}

// Model + optimizer state captured at the end of a good epoch; divergence
// rollback returns the run here before retrying with a smaller LR.
struct RunState {
  ModelSnapshot model;
  int64_t adam_step = 0;
  std::vector<Tensor> adam_m;
  std::vector<Tensor> adam_v;
};

RunState CaptureRun(const std::vector<Variable>& params,
                    const std::vector<Tensor>& buffers,
                    const optim::Adam& optimizer) {
  RunState state;
  state.model = Snapshot(params, buffers);
  optimizer.ExportState(&state.adam_step, &state.adam_m, &state.adam_v);
  return state;
}

void RestoreRun(std::vector<Variable>& params, std::vector<Tensor>& buffers,
                optim::Adam& optimizer, const RunState& state) {
  Restore(params, buffers, state.model);
  // The state was captured from this very optimizer, so a mismatch is a
  // programmer error, not recoverable input.
  const Status status =
      optimizer.ImportState(state.adam_step, state.adam_m, state.adam_v);
  ARMNET_CHECK(status.ok()) << status.message();
}

}  // namespace

TrainResult Fit(models::TabularModel& model, const data::Splits& splits,
                const TrainConfig& config) {
  ARMNET_PROFILE_SCOPE("armor/Fit");
  Rng rng(config.seed);
  Rng dropout_rng = rng.Fork();
  std::vector<Variable> params = model.Parameters();
  optim::Adam optimizer(params, config.learning_rate, 0.9f, 0.999f, 1e-8f,
                        config.weight_decay);
  data::Batcher batcher(splits.train, config.batch_size, /*shuffle=*/true,
                        rng.Fork());

  TrainResult result;
  std::vector<Tensor> buffers = model.Buffers();
  float lr = config.learning_rate;
  bool has_best = false;
  ModelSnapshot best = Snapshot(params, buffers);
  int epochs_since_best = 0;
  int start_epoch = 0;
  Stopwatch watch;
  // Injected clock stalls accumulate here so the watchdog sees them.
  double stall_seconds = 0;

  auto incident = [&result, &config](std::string message) {
    if (config.verbose) {
      std::fprintf(stderr, "[trainer] %s\n", message.c_str());
    }
    result.incidents.push_back(std::move(message));
  };

  // --- Epoch telemetry (DESIGN.md §10) ---------------------------------
  // One JSONL record per completed epoch. Telemetry is best-effort: any
  // I/O failure raises an incident and disables further writes, so a full
  // disk can never take the training run down with it.
  std::string telemetry_path = config.telemetry_path;
  if (telemetry_path.empty() && !config.checkpoint_dir.empty()) {
    telemetry_path = config.checkpoint_dir + "/epochs.jsonl";
  }
  bool telemetry_on = !telemetry_path.empty();
  if (telemetry_on) {
    const std::filesystem::path parent =
        std::filesystem::path(telemetry_path).parent_path();
    if (!parent.empty()) {
      std::error_code ec;
      std::filesystem::create_directories(parent, ec);
      if (ec) {
        telemetry_on = false;
        incident("epoch telemetry disabled: cannot create " +
                 parent.string() + ": " + ec.message());
      }
    }
  }
  // Incidents already serialized into some record; each record carries
  // only the ones raised since the previous record, so resumed runs and
  // diverged-epoch retries attribute faults to the next line written.
  size_t incidents_reported = result.incidents.size();
  auto write_epoch_telemetry =
      [&](int epoch_number, double train_loss, int64_t steps,
          double grad_norm_mean, const EvalResult& validation, double metric,
          int64_t train_nodes_recorded, int64_t train_nodes_elided,
          double epoch_seconds) {
        if (!telemetry_on) return;
        JsonWriter w;
        w.BeginObject();
        w.Key("epoch").Int(epoch_number);
        w.Key("train_loss").Double(train_loss);
        w.Key("steps").Int(steps);
        w.Key("grad_norm_mean").Double(grad_norm_mean);
        w.Key("lr").Double(lr);
        w.Key("val_metric").Double(metric);
        w.Key("val_auc").Double(validation.auc);
        w.Key("val_logloss").Double(validation.logloss);
        w.Key("val_rmse").Double(validation.rmse);
        w.Key("non_finite_logits").Int(validation.non_finite_logits);
        w.Key("epoch_seconds").Double(epoch_seconds);
        w.Key("tape").BeginObject();
        w.Key("train_nodes_recorded").Int(train_nodes_recorded);
        w.Key("train_nodes_elided").Int(train_nodes_elided);
        w.Key("eval_nodes_recorded").Int(validation.tape_nodes_recorded);
        w.Key("eval_nodes_elided").Int(validation.tape_nodes_elided);
        w.EndObject();
        w.Key("eval_pool").BeginObject();
        w.Key("hits").Int(validation.pool.hits);
        w.Key("misses").Int(validation.pool.misses);
        w.Key("returns").Int(validation.pool.returns);
        w.Key("dropped").Int(validation.pool.dropped);
        w.Key("bytes_served").Int(validation.pool.bytes_served);
        w.Key("bytes_pooled").Int(validation.pool.bytes_pooled);
        w.EndObject();
        w.Key("incidents").BeginArray();
        for (size_t i = incidents_reported; i < result.incidents.size();
             ++i) {
          w.String(result.incidents[i]);
        }
        w.EndArray();
        w.EndObject();
        incidents_reported = result.incidents.size();
        const Status appended = AppendLine(telemetry_path, w.str());
        if (!appended.ok()) {
          telemetry_on = false;
          incident("epoch telemetry disabled: " + appended.message());
        }
      };

  // Validates a loaded checkpoint against this run's config and model,
  // then applies it. Validation happens up front so a mismatched or
  // hostile checkpoint leaves the fresh-initialized run untouched.
  auto apply_checkpoint = [&](TrainCheckpoint& ckpt) -> Status {
    if (ckpt.seed != config.seed ||
        ckpt.task != static_cast<uint32_t>(config.task) ||
        ckpt.batch_size != config.batch_size) {
      return Status::Error(
          "checkpoint was written under a different seed/task/batch size");
    }
    if (ckpt.epochs_completed < 0 ||
        static_cast<int64_t>(ckpt.history.size()) != ckpt.epochs_completed) {
      return Status::Error("checkpoint epoch bookkeeping is inconsistent");
    }
    if (ckpt.params.size() != params.size() ||
        ckpt.best_params.size() != params.size() ||
        ckpt.buffers.size() != buffers.size() ||
        ckpt.best_buffers.size() != buffers.size()) {
      return Status::Error("checkpoint tensor counts do not match the model");
    }
    for (size_t i = 0; i < params.size(); ++i) {
      if (ckpt.params[i].shape() != params[i].shape() ||
          ckpt.best_params[i].shape() != params[i].shape()) {
        return Status::Error(
            StrFormat("checkpoint shape mismatch for parameter %zu", i));
      }
    }
    for (size_t i = 0; i < buffers.size(); ++i) {
      if (ckpt.buffers[i].shape() != buffers[i].shape() ||
          ckpt.best_buffers[i].shape() != buffers[i].shape()) {
        return Status::Error(
            StrFormat("checkpoint shape mismatch for buffer %zu", i));
      }
    }
    const Status order_valid = data::Batcher::ValidateOrder(
        ckpt.batcher_order, splits.train.size());
    if (!order_valid.ok()) {
      return Status::Error("checkpoint batch permutation rejected: " +
                           order_valid.message());
    }
    Status adam =
        optimizer.ImportState(ckpt.adam_step, ckpt.adam_m, ckpt.adam_v);
    if (!adam.ok()) return adam;

    for (size_t i = 0; i < params.size(); ++i) {
      Tensor& dst = params[i].mutable_value();
      std::copy(ckpt.params[i].data(),
                ckpt.params[i].data() + ckpt.params[i].numel(), dst.data());
    }
    for (size_t i = 0; i < buffers.size(); ++i) {
      std::copy(ckpt.buffers[i].data(),
                ckpt.buffers[i].data() + ckpt.buffers[i].numel(),
                buffers[i].data());
    }
    best.params = std::move(ckpt.best_params);
    best.buffers = std::move(ckpt.best_buffers);
    lr = ckpt.learning_rate;
    optimizer.set_learning_rate(lr);
    dropout_rng.SetState(ckpt.dropout_rng);
    batcher.set_rng_state(ckpt.batcher_rng);
    // ValidateOrder accepted this permutation above, so adoption is
    // infallible here — a failure now is a programmer error.
    const Status order_applied =
        batcher.set_order(std::move(ckpt.batcher_order));
    ARMNET_CHECK(order_applied.ok()) << order_applied.message();
    has_best = ckpt.has_best;
    result.best_validation_metric = ckpt.best_metric;
    epochs_since_best = static_cast<int>(ckpt.epochs_since_best);
    result.divergence_recoveries =
        static_cast<int>(ckpt.divergence_recoveries);
    result.validation_metric_history = ckpt.history;
    start_epoch = static_cast<int>(ckpt.epochs_completed);
    result.resumed_from_epoch = start_epoch;
    result.epochs_run = start_epoch;
    return Status::Ok();
  };

  if (!config.checkpoint_dir.empty() &&
      TrainCheckpointExists(config.checkpoint_dir)) {
    StatusOr<TrainCheckpoint> loaded =
        LoadTrainCheckpoint(config.checkpoint_dir);
    if (!loaded.ok()) {
      incident("checkpoint unreadable, starting fresh: " +
               loaded.status().message());
    } else {
      const Status applied = apply_checkpoint(loaded.value());
      if (!applied.ok()) {
        incident("checkpoint rejected, starting fresh: " + applied.message());
      } else if (config.verbose) {
        std::fprintf(stderr, "[trainer] resumed after epoch %d from %s\n",
                     start_epoch,
                     TrainCheckpointPath(config.checkpoint_dir).c_str());
      }
    }
  }

  RunState last_good = CaptureRun(params, buffers, optimizer);

  int epoch = start_epoch;
  while (epoch < config.max_epochs) {
    Stopwatch epoch_watch;
    const autograd::TapeStats epoch_tape_before = autograd::GetTapeStats();
    model.SetTraining(true);
    batcher.Reset();
    data::Batch batch;
    double epoch_loss = 0;
    int64_t steps = 0;
    bool diverged = false;
    std::string diverge_reason;
    double norm_sum = 0;
    int64_t norm_count = 0;
    while (batcher.Next(&batch)) {
      Variable logits = model.Forward(batch, dropout_rng);
      Variable loss =
          config.task == Task::kClassification
              ? ag::BceWithLogits(logits, batch.LabelsTensor())
              : ag::MseLoss(logits, batch.LabelsTensor());
      if (fault::ShouldFail(fault::kSiteTrainerLoss,
                            fault::Kind::kPoisonTensor)) {
        Tensor value = loss.value();  // shared handle: poisons the loss
        value.data()[0] = std::numeric_limits<float>::quiet_NaN();
      }
      const float loss_value = loss.value().item();
      if (!std::isfinite(loss_value)) {
        diverged = true;
        diverge_reason = StrFormat("non-finite loss at step %lld",
                                   static_cast<long long>(steps + 1));
        break;
      }
      optimizer.ZeroGrad();
      loss.Backward();
      const double norm = optim::ClipGradNorm(params, config.grad_clip_norm);
      if (!std::isfinite(norm)) {
        diverged = true;
        diverge_reason = StrFormat("non-finite gradient norm at step %lld",
                                   static_cast<long long>(steps + 1));
        break;
      }
      if (config.grad_spike_factor > 0 && norm_count >= 32 &&
          norm > config.grad_spike_factor *
                     (norm_sum / static_cast<double>(norm_count))) {
        diverged = true;
        diverge_reason = StrFormat(
            "gradient norm spike at step %lld (%.3g vs running mean %.3g)",
            static_cast<long long>(steps + 1), norm,
            norm_sum / static_cast<double>(norm_count));
        break;
      }
      optimizer.Step();
      norm_sum += norm;
      ++norm_count;
      epoch_loss += loss_value;
      ++steps;
      if (config.max_batches_per_epoch > 0 &&
          steps >= config.max_batches_per_epoch) {
        break;
      }
      stall_seconds += fault::ClockStallSeconds(fault::kSiteTrainerClock);
      if (config.max_train_seconds > 0 &&
          watch.ElapsedSeconds() + stall_seconds > config.max_train_seconds) {
        result.watchdog_fired = true;
        break;
      }
    }

    if (diverged) {
      if (result.divergence_recoveries >= config.max_divergence_retries) {
        result.divergence_gave_up = true;
        RestoreRun(params, buffers, optimizer, last_good);
        incident(StrFormat(
            "epoch %d: %s; retry budget exhausted after %d recoveries — "
            "stopping with the last good weights",
            epoch + 1, diverge_reason.c_str(), result.divergence_recoveries));
        break;
      }
      ++result.divergence_recoveries;
      RestoreRun(params, buffers, optimizer, last_good);
      lr *= config.divergence_lr_backoff;
      optimizer.set_learning_rate(lr);
      incident(StrFormat(
          "epoch %d: %s; rolled back to the last good state and backed the "
          "learning rate off to %g (recovery %d/%d)",
          epoch + 1, diverge_reason.c_str(), static_cast<double>(lr),
          result.divergence_recoveries, config.max_divergence_retries));
      continue;  // retry the same epoch
    }
    if (result.watchdog_fired) {
      incident(StrFormat(
          "watchdog: wall clock exceeded %.3f s during epoch %d; stopping "
          "with the best weights so far",
          config.max_train_seconds, epoch + 1));
      break;
    }

    result.epochs_run = epoch + 1;
    const autograd::TapeStats epoch_tape_after = autograd::GetTapeStats();

    // Evaluate runs tape-free under NoGradGuard with pooled storage and
    // restores the model's training mode on exit (see armor/evaluator.cc).
    const EvalResult validation =
        Evaluate(model, splits.validation, config.batch_size);
    // Selection metric, oriented so larger is better.
    const double metric = config.task == Task::kClassification
                              ? validation.auc
                              : -validation.rmse;
    result.validation_metric_history.push_back(metric);
    if (config.verbose) {
      std::fprintf(stderr,
                   "[%s] epoch %d: train_loss=%.4f val_auc=%.4f "
                   "val_logloss=%.4f val_rmse=%.4f\n",
                   model.name().c_str(), epoch + 1,
                   epoch_loss / static_cast<double>(steps > 0 ? steps : 1),
                   validation.auc, validation.logloss, validation.rmse);
    }

    // A non-finite metric must neither become "best" (NaN comparisons are
    // always false, which used to freeze the first-epoch best forever) nor
    // reset patience: it counts as a non-improving epoch.
    const bool finite_metric = std::isfinite(metric);
    if (!finite_metric) {
      incident(StrFormat(
          "epoch %d: non-finite validation metric; counted as a "
          "non-improving epoch",
          epoch + 1));
    }
    if (finite_metric &&
        (!has_best || metric > result.best_validation_metric)) {
      result.best_validation_metric = metric;
      best = Snapshot(params, buffers);
      has_best = true;
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
    }

    last_good = CaptureRun(params, buffers, optimizer);

    if (!config.checkpoint_dir.empty()) {
      TrainCheckpoint ckpt;
      ckpt.seed = config.seed;
      ckpt.task = static_cast<uint32_t>(config.task);
      ckpt.batch_size = config.batch_size;
      ckpt.epochs_completed = epoch + 1;
      ckpt.learning_rate = lr;
      ckpt.has_best = has_best;
      ckpt.best_metric = result.best_validation_metric;
      ckpt.epochs_since_best = epochs_since_best;
      ckpt.divergence_recoveries = result.divergence_recoveries;
      ckpt.history = result.validation_metric_history;
      ckpt.dropout_rng = dropout_rng.GetState();
      ckpt.batcher_rng = batcher.rng_state();
      ckpt.batcher_order = batcher.order();
      for (const Tensor& t : last_good.model.params) {
        ckpt.params.push_back(t.Clone());
      }
      for (const Tensor& t : last_good.model.buffers) {
        ckpt.buffers.push_back(t.Clone());
      }
      for (const Tensor& t : best.params) {
        ckpt.best_params.push_back(t.Clone());
      }
      for (const Tensor& t : best.buffers) {
        ckpt.best_buffers.push_back(t.Clone());
      }
      optimizer.ExportState(&ckpt.adam_step, &ckpt.adam_m, &ckpt.adam_v);
      const Status saved =
          SaveTrainCheckpoint(ckpt, config.checkpoint_dir);
      if (!saved.ok()) {
        incident(StrFormat("epoch %d: checkpoint save failed: %s", epoch + 1,
                           saved.message().c_str()));
      }
    }

    write_epoch_telemetry(
        epoch + 1, epoch_loss / static_cast<double>(steps > 0 ? steps : 1),
        steps, norm_count > 0 ? norm_sum / static_cast<double>(norm_count)
                              : 0.0,
        validation, metric,
        epoch_tape_after.nodes_recorded - epoch_tape_before.nodes_recorded,
        epoch_tape_after.nodes_elided - epoch_tape_before.nodes_elided,
        epoch_watch.ElapsedSeconds());

    if (epochs_since_best >= config.patience) break;
    ++epoch;
  }
  if (config.task == Task::kClassification) {
    result.best_validation_auc = result.best_validation_metric;
  }
  result.train_seconds = watch.ElapsedSeconds();

  Restore(params, buffers, best);

  // Serving export: persist the best-epoch weights (and the feature-space
  // artifact the prediction service replays) as a deployable pair. Export
  // problems are incidents — a full disk must not discard a finished run.
  const std::string export_dir =
      !config.export_dir.empty() ? config.export_dir : config.checkpoint_dir;
  if (!export_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(export_dir, ec);
    const Status saved_model =
        nn::SaveState(model, export_dir + "/model.state");
    if (!saved_model.ok()) {
      incident("model export failed: " + saved_model.message());
    }
    if (config.export_feature_space != nullptr) {
      data::FeatureSpace artifact_space = *config.export_feature_space;
      if (config.export_drift_reference) {
        // Drift reference (DESIGN.md §16): the restored best-epoch model's
        // score distribution over the validation split (training split when
        // no validation rows exist) becomes the serving-time comparison
        // baseline. Per-field baseline rates stay zero — the vocabulary and
        // ranges were built from this very data, so nothing is OOV or
        // out-of-range by construction.
        const data::Dataset& reference_split =
            splits.validation.size() > 0 ? splits.validation : splits.train;
        const std::vector<float> logits =
            PredictLogits(model, reference_split, config.batch_size);
        data::DriftReference reference;
        reference.score_histogram.assign(data::kDriftScoreBins, 0);
        int64_t counted = 0;
        for (const float logit : logits) {
          if (!std::isfinite(logit)) continue;
          const double p =
              1.0 / (1.0 + std::exp(-static_cast<double>(logit)));
          int bin = static_cast<int>(p * data::kDriftScoreBins);
          bin = std::min(std::max(bin, 0), data::kDriftScoreBins - 1);
          ++reference.score_histogram[static_cast<size_t>(bin)];
          ++counted;
        }
        if (counted > 0) {
          artifact_space.set_drift_reference(std::move(reference));
        } else {
          incident(
              "drift reference skipped: no finite reference-split scores");
        }
      }
      const Status saved_space = data::SaveFeatureSpace(
          artifact_space, export_dir + "/serving.artifact");
      if (!saved_space.ok()) {
        incident("serving artifact export failed: " + saved_space.message());
      }
    }
  }

  result.test = Evaluate(model, splits.test, config.batch_size);
  return result;
}

}  // namespace armnet::armor
