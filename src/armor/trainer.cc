#include "armor/trainer.h"

#include <cstdio>

#include "data/batcher.h"
#include "optim/adam.h"
#include "util/stopwatch.h"

namespace armnet::armor {

namespace {

// Deep copy of the full model state: parameters plus non-learnable buffers
// (batch-norm running statistics), so best-epoch restoration is exact.
struct ModelSnapshot {
  std::vector<Tensor> params;
  std::vector<Tensor> buffers;
};

ModelSnapshot Snapshot(const std::vector<Variable>& params,
                       const std::vector<Tensor>& buffers) {
  ModelSnapshot snapshot;
  snapshot.params.reserve(params.size());
  for (const Variable& p : params) snapshot.params.push_back(p.value().Clone());
  snapshot.buffers.reserve(buffers.size());
  for (const Tensor& b : buffers) snapshot.buffers.push_back(b.Clone());
  return snapshot;
}

void Restore(std::vector<Variable>& params, std::vector<Tensor>& buffers,
             const ModelSnapshot& snapshot) {
  ARMNET_CHECK_EQ(params.size(), snapshot.params.size());
  ARMNET_CHECK_EQ(buffers.size(), snapshot.buffers.size());
  for (size_t i = 0; i < params.size(); ++i) {
    Tensor& dst = params[i].mutable_value();
    const Tensor& src = snapshot.params[i];
    ARMNET_CHECK(dst.shape() == src.shape());
    std::copy(src.data(), src.data() + src.numel(), dst.data());
  }
  for (size_t i = 0; i < buffers.size(); ++i) {
    // Buffers are shared handles into the modules' state.
    Tensor& dst = buffers[i];
    const Tensor& src = snapshot.buffers[i];
    ARMNET_CHECK(dst.shape() == src.shape());
    std::copy(src.data(), src.data() + src.numel(), dst.data());
  }
}

}  // namespace

TrainResult Fit(models::TabularModel& model, const data::Splits& splits,
                const TrainConfig& config) {
  Rng rng(config.seed);
  Rng dropout_rng = rng.Fork();
  std::vector<Variable> params = model.Parameters();
  optim::Adam optimizer(params, config.learning_rate, 0.9f, 0.999f, 1e-8f,
                        config.weight_decay);
  data::Batcher batcher(splits.train, config.batch_size, /*shuffle=*/true,
                        rng.Fork());

  TrainResult result;
  std::vector<Tensor> buffers = model.Buffers();
  ModelSnapshot best = Snapshot(params, buffers);
  int epochs_since_best = 0;
  Stopwatch watch;

  for (int epoch = 0; epoch < config.max_epochs; ++epoch) {
    model.SetTraining(true);
    batcher.Reset();
    data::Batch batch;
    double epoch_loss = 0;
    int64_t steps = 0;
    while (batcher.Next(&batch)) {
      Variable logits = model.Forward(batch, dropout_rng);
      Variable loss =
          config.task == Task::kClassification
              ? ag::BceWithLogits(logits, batch.LabelsTensor())
              : ag::MseLoss(logits, batch.LabelsTensor());
      optimizer.ZeroGrad();
      loss.Backward();
      optim::ClipGradNorm(params, config.grad_clip_norm);
      optimizer.Step();
      epoch_loss += loss.value().item();
      ++steps;
      if (config.max_batches_per_epoch > 0 &&
          steps >= config.max_batches_per_epoch) {
        break;
      }
    }
    result.epochs_run = epoch + 1;

    const EvalResult validation =
        Evaluate(model, splits.validation, config.batch_size);
    // Selection metric, oriented so larger is better.
    const double metric = config.task == Task::kClassification
                              ? validation.auc
                              : -validation.rmse;
    result.validation_metric_history.push_back(metric);
    if (config.verbose) {
      std::fprintf(stderr,
                   "[%s] epoch %d: train_loss=%.4f val_auc=%.4f "
                   "val_logloss=%.4f val_rmse=%.4f\n",
                   model.name().c_str(), epoch + 1,
                   epoch_loss / static_cast<double>(steps > 0 ? steps : 1),
                   validation.auc, validation.logloss, validation.rmse);
    }

    const bool first_epoch = epoch == 0;
    if (first_epoch || metric > result.best_validation_metric) {
      result.best_validation_metric = metric;
      best = Snapshot(params, buffers);
      epochs_since_best = 0;
    } else {
      ++epochs_since_best;
      if (epochs_since_best >= config.patience) break;
    }
  }
  if (config.task == Task::kClassification) {
    result.best_validation_auc = result.best_validation_metric;
  }
  result.train_seconds = watch.ElapsedSeconds();

  Restore(params, buffers, best);
  result.test = Evaluate(model, splits.test, config.batch_size);
  return result;
}

}  // namespace armnet::armor
