#ifndef ARMNET_ARMOR_INTERPRETER_H_
#define ARMNET_ARMOR_INTERPRETER_H_

#include <vector>

#include "core/arm_net.h"

namespace armnet::armor {

// Transparent-box interpretability of a trained ARM-Net (paper Section 3.4
// and the Section 4.4 study).
//
// Global: the attention value vectors v_i encode the pre-recalibration
// interaction weight of each field over the instance population; |v|
// aggregated across heads and neurons is the global feature importance
// (Figure 8). Local: the per-instance interaction weights w_i = z_i ∘ v_i
// attribute a specific prediction to fields, per neuron and aggregated
// (Figures 10-11).
class ArmInterpreter {
 public:
  explicit ArmInterpreter(core::ArmNet* model) : model_(model) {
    ARMNET_CHECK(model != nullptr);
  }

  // Mean |v| per field over all K*o neurons, normalized to sum to 1 — the
  // pre-recalibration importance encoded in the shared value vectors.
  std::vector<double> GlobalFieldImportance() const;

  // Gate-calibrated global importance: mean |w| = |z ∘ v| per field over
  // all neurons, averaged over (up to `sample_limit`) instances of
  // `dataset` and normalized to sum to 1. This is the §3.4 "aggregate the
  // interaction weights over the instance population" reading and is the
  // variant the Figure 8 study uses: after training, the per-instance
  // gates — not the raw value magnitudes — carry the selection signal.
  std::vector<double> GlobalFieldImportance(const data::Dataset& dataset,
                                            int64_t sample_limit = 2048,
                                            int64_t batch_size = 512) const;

  struct LocalAttribution {
    // Aggregated |w| per field over all neurons, normalized to sum to 1.
    std::vector<double> field_importance;
    // |w| per field for the `top_neurons` neurons with the largest total
    // attribution mass (the paper's "Neuron1..3" panels).
    std::vector<std::vector<double>> per_neuron;
    // Indices (head * o + neuron) of the selected neurons.
    std::vector<int64_t> neuron_indices;
  };

  // Local feature attribution for the `row`-th tuple of `dataset`.
  LocalAttribution Explain(const data::Dataset& dataset, int64_t row,
                           int top_neurons = 3) const;

 private:
  core::ArmNet* model_;
};

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_INTERPRETER_H_
