#ifndef ARMNET_ARMOR_INTERACTION_MINER_H_
#define ARMNET_ARMOR_INTERACTION_MINER_H_

#include <string>
#include <vector>

#include "core/arm_net.h"

namespace armnet::armor {

// A cross feature captured by ARM-Net's gates, aggregated over a dataset
// (paper Tables 4 and 5).
struct MinedInteraction {
  // Field indices of the interaction term, ascending.
  std::vector<int> fields;
  // Average occurrence count per instance over the K*o neurons (the paper's
  // "Frequency" column; one term can be captured by several neurons).
  double frequency = 0;
  int order() const { return static_cast<int>(fields.size()); }
};

struct MinerConfig {
  int64_t batch_size = 1024;
  // Gate values below this do not count a field as participating. Entmax
  // outputs exact zeros for filtered fields; the threshold also drops
  // barely-on fields the way the paper's reported terms do.
  double gate_threshold = 0.05;
  // Interaction terms above this order are skipped (near-dense gates under
  // small alpha are not meaningful "cross features").
  int max_order = 4;
  // How many top terms to return.
  int top_k = 10;
};

// Runs the trained model over `dataset`, records each neuron's gate support
// per instance, and returns the most frequent field sets.
std::vector<MinedInteraction> MineInteractions(core::ArmNet& model,
                                               const data::Dataset& dataset,
                                               const MinerConfig& config);

// Formats a mined interaction with schema field names:
// "(weekday, location, is_free)".
std::string FormatInteraction(const MinedInteraction& interaction,
                              const data::Schema& schema);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_INTERACTION_MINER_H_
