#include "armor/checkpoint.h"

#include <filesystem>

#include "nn/serialize.h"
#include "util/string_util.h"

namespace armnet::armor {

namespace {

void WriteRngState(nn::StateWriter& writer, const Rng::State& state) {
  for (uint64_t word : state.words) writer.WriteU64(word);
  writer.WriteU32(state.has_cached_gaussian ? 1 : 0);
  writer.WriteDouble(state.cached_gaussian);
}

Status ReadRngState(nn::StateReader& reader, Rng::State* state) {
  for (uint64_t& word : state->words) {
    Status status = reader.ReadU64(&word);
    if (!status.ok()) return status;
  }
  uint32_t has_cached = 0;
  Status status = reader.ReadU32(&has_cached);
  if (!status.ok()) return status;
  state->has_cached_gaussian = has_cached != 0;
  return reader.ReadDouble(&state->cached_gaussian);
}

void WriteTensorList(nn::StateWriter& writer,
                     const std::vector<Tensor>& tensors) {
  writer.WriteU64(tensors.size());
  for (const Tensor& t : tensors) writer.WriteTensor(t);
}

Status ReadTensorList(nn::StateReader& reader, std::vector<Tensor>* out) {
  uint64_t count = 0;
  Status status = reader.ReadU64(&count);
  if (!status.ok()) return status;
  // A checkpoint never holds more than a few thousand tensors; anything
  // larger is corruption that slipped past the CRC (or a hostile file).
  if (count > 1u << 20) {
    return Status::Error(StrFormat("implausible tensor count %llu in %s",
                                   static_cast<unsigned long long>(count),
                                   reader.path().c_str()));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    Tensor tensor;
    status = reader.ReadTensor(&tensor);
    if (!status.ok()) return status;
    out->push_back(std::move(tensor));
  }
  return Status::Ok();
}

void WriteI64List(nn::StateWriter& writer, const std::vector<int64_t>& v) {
  writer.WriteU64(v.size());
  for (int64_t x : v) writer.WriteI64(x);
}

Status ReadI64List(nn::StateReader& reader, std::vector<int64_t>* out) {
  uint64_t count = 0;
  Status status = reader.ReadU64(&count);
  if (!status.ok()) return status;
  if (count > 1ull << 40) {
    return Status::Error(StrFormat("implausible list length %llu in %s",
                                   static_cast<unsigned long long>(count),
                                   reader.path().c_str()));
  }
  out->clear();
  out->reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    int64_t x = 0;
    status = reader.ReadI64(&x);
    if (!status.ok()) return status;
    out->push_back(x);
  }
  return Status::Ok();
}

}  // namespace

std::string TrainCheckpointPath(const std::string& checkpoint_dir) {
  return checkpoint_dir + "/train_state.armc";
}

Status SaveTrainCheckpoint(const TrainCheckpoint& checkpoint,
                           const std::string& checkpoint_dir) {
  std::error_code ec;
  std::filesystem::create_directories(checkpoint_dir, ec);
  if (ec) {
    return Status::Error("cannot create checkpoint dir " + checkpoint_dir +
                         ": " + ec.message());
  }

  nn::StateWriter writer(nn::kStateKindTrainCheckpoint);
  writer.WriteU64(checkpoint.seed);
  writer.WriteU32(checkpoint.task);
  writer.WriteI64(checkpoint.batch_size);
  writer.WriteI64(checkpoint.epochs_completed);
  writer.WriteDouble(checkpoint.learning_rate);
  writer.WriteU32(checkpoint.has_best ? 1 : 0);
  writer.WriteDouble(checkpoint.best_metric);
  writer.WriteI64(checkpoint.epochs_since_best);
  writer.WriteI64(checkpoint.divergence_recoveries);
  writer.WriteDoubles(checkpoint.history);
  WriteRngState(writer, checkpoint.dropout_rng);
  WriteRngState(writer, checkpoint.batcher_rng);
  WriteI64List(writer, checkpoint.batcher_order);
  WriteTensorList(writer, checkpoint.params);
  WriteTensorList(writer, checkpoint.buffers);
  WriteTensorList(writer, checkpoint.best_params);
  WriteTensorList(writer, checkpoint.best_buffers);
  writer.WriteI64(checkpoint.adam_step);
  WriteTensorList(writer, checkpoint.adam_m);
  WriteTensorList(writer, checkpoint.adam_v);
  return writer.Commit(TrainCheckpointPath(checkpoint_dir));
}

bool TrainCheckpointExists(const std::string& checkpoint_dir) {
  std::error_code ec;
  return std::filesystem::exists(TrainCheckpointPath(checkpoint_dir), ec);
}

StatusOr<TrainCheckpoint> LoadTrainCheckpoint(
    const std::string& checkpoint_dir) {
  StatusOr<nn::StateReader> opened = nn::StateReader::Open(
      TrainCheckpointPath(checkpoint_dir), nn::kStateKindTrainCheckpoint);
  if (!opened.ok()) return opened.status();
  nn::StateReader reader = std::move(opened).value();

  TrainCheckpoint ckpt;
  uint32_t has_best = 0;
  double learning_rate = 0;
  Status status = reader.ReadU64(&ckpt.seed);
  if (status.ok()) status = reader.ReadU32(&ckpt.task);
  if (status.ok()) status = reader.ReadI64(&ckpt.batch_size);
  if (status.ok()) status = reader.ReadI64(&ckpt.epochs_completed);
  if (status.ok()) status = reader.ReadDouble(&learning_rate);
  if (status.ok()) status = reader.ReadU32(&has_best);
  if (status.ok()) status = reader.ReadDouble(&ckpt.best_metric);
  if (status.ok()) status = reader.ReadI64(&ckpt.epochs_since_best);
  if (status.ok()) status = reader.ReadI64(&ckpt.divergence_recoveries);
  if (status.ok()) status = reader.ReadDoubles(&ckpt.history);
  if (status.ok()) status = ReadRngState(reader, &ckpt.dropout_rng);
  if (status.ok()) status = ReadRngState(reader, &ckpt.batcher_rng);
  if (status.ok()) status = ReadI64List(reader, &ckpt.batcher_order);
  if (status.ok()) status = ReadTensorList(reader, &ckpt.params);
  if (status.ok()) status = ReadTensorList(reader, &ckpt.buffers);
  if (status.ok()) status = ReadTensorList(reader, &ckpt.best_params);
  if (status.ok()) status = ReadTensorList(reader, &ckpt.best_buffers);
  if (status.ok()) status = reader.ReadI64(&ckpt.adam_step);
  if (status.ok()) status = ReadTensorList(reader, &ckpt.adam_m);
  if (status.ok()) status = ReadTensorList(reader, &ckpt.adam_v);
  if (!status.ok()) return status;
  if (!reader.AtEnd()) {
    return Status::Error("trailing bytes after checkpoint payload in " +
                         reader.path());
  }
  ckpt.learning_rate = static_cast<float>(learning_rate);
  ckpt.has_best = has_best != 0;
  return ckpt;
}

}  // namespace armnet::armor
