#ifndef ARMNET_ARMOR_EVALUATOR_H_
#define ARMNET_ARMOR_EVALUATOR_H_

#include <vector>

#include "core/tabular.h"
#include "data/dataset.h"

namespace armnet::armor {

// Batched inference: raw logits for every row of `dataset`, in row order.
// Runs in eval mode and restores the model's previous mode.
std::vector<float> PredictLogits(models::TabularModel& model,
                                 const data::Dataset& dataset,
                                 int64_t batch_size = 1024);

struct EvalResult {
  double auc = 0;
  double logloss = 0;
  double accuracy = 0;
  // Root mean squared error of the raw model output against the labels;
  // the headline metric for regression tasks (§3.3 of the paper).
  double rmse = 0;
};

// AUC / Logloss / accuracy / RMSE of `model` on `dataset`.
EvalResult Evaluate(models::TabularModel& model, const data::Dataset& dataset,
                    int64_t batch_size = 1024);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_EVALUATOR_H_
