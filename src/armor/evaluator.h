#ifndef ARMNET_ARMOR_EVALUATOR_H_
#define ARMNET_ARMOR_EVALUATOR_H_

#include <cstdint>
#include <vector>

#include "core/tabular.h"
#include "data/dataset.h"
#include "tensor/storage_pool.h"

namespace armnet::armor {

// Batched inference: raw logits for every row of `dataset`, in row order.
// Runs in eval mode and restores the model's previous mode. When
// `pool_stats` is non-null it receives the counters of the tensor pool the
// inference pass ran under.
std::vector<float> PredictLogits(models::TabularModel& model,
                                 const data::Dataset& dataset,
                                 int64_t batch_size = 1024,
                                 TensorPoolStats* pool_stats = nullptr);

struct EvalResult {
  double auc = 0;
  double logloss = 0;
  double accuracy = 0;
  // Root mean squared error of the raw model output against the labels;
  // the headline metric for regression tasks (§3.3 of the paper).
  double rmse = 0;

  // Non-finite logits the model produced (a diverged model's NaN/Inf
  // weights). When > 0 the metric fields above are quiet NaN: the metrics
  // layer CHECK-fails on non-finite scores (they are statistically
  // meaningless and break AUC's sort ordering), so the evaluator reports
  // the divergence to the caller instead of aborting — the trainer counts
  // a NaN validation metric as a non-improving epoch with an incident.
  int64_t non_finite_logits = 0;

  // Execution-mode telemetry for this evaluation pass (DESIGN.md §9/§10).
  // Tape deltas are read from the process-wide counters, so concurrent
  // training on other threads can inflate them; in the single-threaded
  // eval path `tape_nodes_recorded` is exactly 0.
  int64_t tape_nodes_recorded = 0;
  int64_t tape_nodes_elided = 0;
  TensorPoolStats pool;
};

// AUC / Logloss / accuracy / RMSE of `model` on `dataset`.
EvalResult Evaluate(models::TabularModel& model, const data::Dataset& dataset,
                    int64_t batch_size = 1024);

}  // namespace armnet::armor

#endif  // ARMNET_ARMOR_EVALUATOR_H_
