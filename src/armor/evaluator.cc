#include "armor/evaluator.h"

#include <cmath>
#include <limits>

#include "autograd/grad_mode.h"
#include "data/batcher.h"
#include "metrics/metrics.h"
#include "tensor/storage_pool.h"
#include "util/profiler.h"

namespace armnet::armor {

std::vector<float> PredictLogits(models::TabularModel& model,
                                 const data::Dataset& dataset,
                                 int64_t batch_size,
                                 TensorPoolStats* pool_stats) {
  ARMNET_PROFILE_SCOPE("armor/PredictLogits");
  nn::TrainingModeGuard eval_mode(model, /*training=*/false);
  // Tape-free, allocation-lean inference: no autograd nodes are recorded
  // and each batch's intermediates recycle the previous batch's buffers.
  NoGradGuard no_grad;
  TensorPool pool;
  ScopedTensorPool scoped_pool(pool);
  Rng rng(0);  // eval mode uses no randomness; any seed works
  std::vector<float> logits;
  logits.reserve(static_cast<size_t>(dataset.size()));

  data::Batcher batcher(dataset, batch_size, /*shuffle=*/false, Rng(0));
  data::Batch batch;
  while (batcher.Next(&batch)) {
    Variable out = model.Forward(batch, rng);
    const Tensor& values = out.value();
    ARMNET_CHECK_EQ(values.numel(), batch.batch_size);
    for (int64_t i = 0; i < values.numel(); ++i) logits.push_back(values[i]);
  }
  if (pool_stats != nullptr) *pool_stats = pool.stats();
  return logits;
}

EvalResult Evaluate(models::TabularModel& model, const data::Dataset& dataset,
                    int64_t batch_size) {
  ARMNET_PROFILE_SCOPE("armor/Evaluate");
  EvalResult result;
  const autograd::TapeStats tape_before = autograd::GetTapeStats();
  const std::vector<float> logits =
      PredictLogits(model, dataset, batch_size, &result.pool);
  const autograd::TapeStats tape_after = autograd::GetTapeStats();
  result.tape_nodes_recorded =
      tape_after.nodes_recorded - tape_before.nodes_recorded;
  result.tape_nodes_elided = tape_after.nodes_elided - tape_before.nodes_elided;

  for (const float logit : logits) {
    if (!std::isfinite(logit)) ++result.non_finite_logits;
  }
  if (result.non_finite_logits > 0) {
    // The metrics layer rejects non-finite scores loudly (AUC's sort
    // comparator has no ordering for NaN); a diverged model instead
    // surfaces here as NaN metrics for the caller's divergence handling.
    const double nan = std::numeric_limits<double>::quiet_NaN();
    result.auc = nan;
    result.logloss = nan;
    result.accuracy = nan;
    result.rmse = nan;
    return result;
  }

  std::vector<float> labels(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    labels[static_cast<size_t>(i)] = dataset.label_at(i);
  }
  result.auc = metrics::Auc(logits, labels);
  result.logloss = metrics::LogLoss(logits, labels);
  result.accuracy = metrics::Accuracy(logits, labels);
  result.rmse = metrics::Rmse(logits, labels);
  return result;
}

}  // namespace armnet::armor
