#include "armor/evaluator.h"

#include "autograd/grad_mode.h"
#include "data/batcher.h"
#include "metrics/metrics.h"
#include "tensor/storage_pool.h"

namespace armnet::armor {

std::vector<float> PredictLogits(models::TabularModel& model,
                                 const data::Dataset& dataset,
                                 int64_t batch_size) {
  nn::TrainingModeGuard eval_mode(model, /*training=*/false);
  // Tape-free, allocation-lean inference: no autograd nodes are recorded
  // and each batch's intermediates recycle the previous batch's buffers.
  NoGradGuard no_grad;
  TensorPool pool;
  ScopedTensorPool scoped_pool(pool);
  Rng rng(0);  // eval mode uses no randomness; any seed works
  std::vector<float> logits;
  logits.reserve(static_cast<size_t>(dataset.size()));

  data::Batcher batcher(dataset, batch_size, /*shuffle=*/false, Rng(0));
  data::Batch batch;
  while (batcher.Next(&batch)) {
    Variable out = model.Forward(batch, rng);
    const Tensor& values = out.value();
    ARMNET_CHECK_EQ(values.numel(), batch.batch_size);
    for (int64_t i = 0; i < values.numel(); ++i) logits.push_back(values[i]);
  }
  return logits;
}

EvalResult Evaluate(models::TabularModel& model, const data::Dataset& dataset,
                    int64_t batch_size) {
  const std::vector<float> logits = PredictLogits(model, dataset, batch_size);
  std::vector<float> labels(static_cast<size_t>(dataset.size()));
  for (int64_t i = 0; i < dataset.size(); ++i) {
    labels[static_cast<size_t>(i)] = dataset.label_at(i);
  }
  EvalResult result;
  result.auc = metrics::Auc(logits, labels);
  result.logloss = metrics::LogLoss(logits, labels);
  result.accuracy = metrics::Accuracy(logits, labels);
  result.rmse = metrics::Rmse(logits, labels);
  return result;
}

}  // namespace armnet::armor
