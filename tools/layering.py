#!/usr/bin/env python3
"""Architecture layering checker for armnet (DESIGN.md §12).

The source tree is a layered DAG: every directory under src/ sits in one
layer, and an #include may only point at the same layer or a lower one.
The DAG below is the machine-readable form of the dependency discipline the
refactors rely on (util at the bottom, the serving/interpretation surfaces
at the top); before this checker it was tribal knowledge.

    layer 0   util
    layer 1   tensor
    layer 2   autograd
    layer 3   nn
    layer 4   data, optim, metrics
    layer 5   core, models
    layer 6   plan
    layer 7   armor
    layer 8   serve, interpret

Two failure modes, both printed with the offending edge:

  up-layer   a file includes a header from a higher layer
             (e.g. tensor/ including nn/) — the dependency inversion that
             turns refactors into whack-a-mole
  cycle      same-layer directories include each other (directly or via a
             chain), so neither can be built, tested, or reasoned about
             without the other

Run standalone (`tools/layering.py`), as part of `tools/lint.py`, or with
--self-test to exercise the checker against fixture include graphs.
Exits non-zero on any finding.
"""

import argparse
import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

# The layer DAG. Directories in one inner list share a layer: they may
# include each other (acyclically) but nothing above them.
LAYERS = [
    ["util"],
    ["tensor"],
    ["autograd"],
    ["nn"],
    ["data", "optim", "metrics"],
    ["core", "models"],
    ["plan"],
    ["armor"],
    ["serve", "interpret"],
]

LAYER_OF = {d: i for i, layer in enumerate(LAYERS) for d in layer}

INCLUDE_RE = re.compile(r'^\s*#include\s+"([^"]+)"')


def parse_includes(text):
    """Yields (lineno, include_path) for every quoted #include in `text`."""
    for lineno, line in enumerate(text.splitlines(), start=1):
        m = INCLUDE_RE.match(line)
        if m:
            yield lineno, m.group(1)


def collect_edges(files):
    """Builds the directory-level include graph.

    `files` maps a src-relative path (e.g. "serve/service.cc") to its text.
    Returns (edges, findings): `edges` is a list of
    (src_dir, dst_dir, rel_path, lineno, include) for includes that resolve
    to a known layer directory; `findings` collects includes naming an
    unknown top-level directory (a new directory must be placed in the DAG
    before it can be included).
    """
    edges = []
    findings = []
    for rel_path, text in sorted(files.items()):
        src_dir = Path(rel_path).parts[0]
        if src_dir not in LAYER_OF:
            findings.append(
                f"src/{rel_path}:1: [layering] directory '{src_dir}' is not "
                "in the layer DAG (tools/layering.py LAYERS)")
            continue
        for lineno, include in parse_includes(text):
            dst_dir = Path(include).parts[0]
            if dst_dir not in LAYER_OF:
                findings.append(
                    f"src/{rel_path}:{lineno}: [layering] include "
                    f"'{include}' points at directory '{dst_dir}' which is "
                    "not in the layer DAG (tools/layering.py LAYERS)")
                continue
            edges.append((src_dir, dst_dir, rel_path, lineno, include))
    return edges, findings


def check_up_layer(edges):
    """Flags edges that point from a lower layer into a higher one."""
    findings = []
    for src_dir, dst_dir, rel_path, lineno, include in edges:
        if LAYER_OF[dst_dir] > LAYER_OF[src_dir]:
            findings.append(
                f"src/{rel_path}:{lineno}: [layering] up-layer include: "
                f"{src_dir} (layer {LAYER_OF[src_dir]}) -> {dst_dir} "
                f"(layer {LAYER_OF[dst_dir]}) via '{include}'")
    return findings


def check_cycles(edges):
    """Flags directory-level cycles among same-layer includes.

    Up-layer edges are reported separately and cross-layer-down edges cannot
    cycle, so only same-layer cross-directory edges can close a loop.
    """
    graph = {}
    edge_example = {}
    for src_dir, dst_dir, rel_path, lineno, include in edges:
        if src_dir == dst_dir or LAYER_OF[src_dir] != LAYER_OF[dst_dir]:
            continue
        graph.setdefault(src_dir, set()).add(dst_dir)
        edge_example.setdefault((src_dir, dst_dir),
                                (rel_path, lineno, include))

    findings = []
    # Iterative DFS with colors; report each cycle once via its closing edge.
    WHITE, GREY, BLACK = 0, 1, 2
    color = {d: WHITE for d in graph}
    stack_path = []

    def dfs(node):
        color[node] = GREY
        stack_path.append(node)
        for nxt in sorted(graph.get(node, ())):
            if color.get(nxt, WHITE) == GREY:
                cycle = stack_path[stack_path.index(nxt):] + [nxt]
                rel_path, lineno, include = edge_example[(node, nxt)]
                findings.append(
                    f"src/{rel_path}:{lineno}: [layering] include cycle "
                    f"{' -> '.join(cycle)} (closing edge via '{include}')")
            elif color.get(nxt, WHITE) == WHITE:
                dfs(nxt)
        stack_path.pop()
        color[node] = BLACK

    for node in sorted(graph):
        if color[node] == WHITE:
            dfs(node)
    return findings


def check_files(files):
    """Runs every layering rule over a {rel_path: text} map."""
    edges, findings = collect_edges(files)
    findings += check_up_layer(edges)
    findings += check_cycles(edges)
    return findings


def load_repo_files():
    files = {}
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        files[str(path.relative_to(SRC))] = path.read_text()
    return files


def self_test():
    """Exercises the checker on fixture include graphs."""
    failures = []

    def expect(name, files, substrings):
        found = check_files(files)
        for needle in substrings:
            if not any(needle in f for f in found):
                failures.append(
                    f"self-test '{name}': expected a finding containing "
                    f"{needle!r}, got {found or '[no findings]'}")
        if not substrings and found:
            failures.append(f"self-test '{name}': expected clean, got {found}")

    # A well-layered slice of the real tree: everything points downward.
    expect("good-dag", {
        "util/sync.h": "",
        "tensor/tensor.h": '#include "util/check.h"\n',
        "nn/linear.h": '#include "autograd/variable.h"\n'
                       '#include "tensor/tensor.h"\n',
        "autograd/variable.h": '#include "tensor/tensor.h"\n',
        "serve/service.h": '#include "core/tabular.h"\n'
                           '#include "util/sync.h"\n',
        "models/lr.h": '#include "core/arm_module.h"\n',  # same-layer, no cycle
    }, [])

    # An up-layer edge: tensor reaching into nn.
    expect("up-layer-edge", {
        "tensor/kernels.cc": '#include "nn/linear.h"\n',
        "nn/linear.h": "",
    }, ["up-layer include: tensor (layer 1) -> nn (layer 3)"])

    # The compiled-plan layer may look down at models but never up at the
    # serving surface that drives it.
    expect("plan-up-layer", {
        "plan/vm.cc": '#include "serve/service.h"\n',
        "serve/service.h": "",
    }, ["up-layer include: plan (layer 6) -> serve (layer 8)"])

    # A same-layer cycle: core <-> models.
    expect("same-layer-cycle", {
        "core/arm_module.h": '#include "models/lr.h"\n',
        "models/lr.h": '#include "core/arm_module.h"\n',
    }, ["include cycle"])

    # An unknown directory must be declared in the DAG before use.
    expect("unknown-dir", {
        "core/arm_module.h": '#include "experimental/new_thing.h"\n',
    }, ["not in the layer DAG"])

    if failures:
        for f in failures:
            print(f, file=sys.stderr)
        return 1
    print("layering.py --self-test: all fixtures pass")
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--self-test", action="store_true",
                        help="run the checker against fixture include graphs")
    args = parser.parse_args()

    if args.self_test:
        return self_test()

    findings = check_files(load_repo_files())
    for finding in findings:
        print(finding)
    if findings:
        return 1
    print("layering.py: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
