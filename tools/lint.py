#!/usr/bin/env python3
"""Repo-invariant lint for armnet.

Enforces the rules clang-tidy cannot express (see DESIGN.md "Correctness
tooling"):

  guard        every header under src/ has an ARMNET_<PATH>_H_ include guard
               (#ifndef / #define pair and a commented #endif)
  raw-abort    no raw assert()/abort() outside src/util/check.h; programmer
               errors go through ARMNET_CHECK/ARMNET_DCHECK, recoverable
               errors through armnet::Status
  stdout       no std::cout / printf / puts in src/ (library code reports via
               Status or CHECK streams; stderr logging is allowed)
  kernel-pre   every kernel dispatcher in src/tensor/kernels.cc DCHECKs its
               pointer/size preconditions before entering the raw-pointer
               scalar/SIMD implementations
  raw-ofstream persistent artifacts must go through the durable writers
               (nn::StateWriter's atomic write-then-rename, the loaders'
               checked streams, util/csv.cc's WriteLines); direct
               std::ofstream elsewhere in src/ bypasses CRC framing and
               atomic-commit guarantees
  supp-policy  every entry in tools/sanitizers/*.supp carries an explanatory
               comment directly above it (empty-by-default policy)
  raw-chrono   no direct std::chrono use in src/ outside util/stopwatch.h and
               the profiler; timing goes through Stopwatch (one steady-clock
               choice) or ARMNET_PROFILE_SCOPE (so it aggregates into the
               observability layer and compiles out of release)
  nograd-eval  evaluation entry points in src/armor/ and src/interpret/ must
               establish a NoGradGuard before calling a model Forward, so
               serving paths stay tape-free (allowlist: the trainer, whose
               training step differentiates through Forward)
  mutex-facade no raw std::mutex / std::lock_guard / std::unique_lock /
               std::condition_variable in src/ outside util/sync.{h,cc};
               concurrency goes through the annotated facade so Clang's
               thread-safety analysis sees every lock (DESIGN.md §12)
  ts-escape    every ARMNET_NO_THREAD_SAFETY_ANALYSIS outside util/sync.h
               carries a justification comment directly above it
               (empty-by-default policy, like sanitizer suppressions)
  mmap-isolation
               raw mmap/munmap (and <sys/mman.h>) live only in
               src/nn/embedding_store.cc, whose MappedFile owns the mapping
               lifetime through the QuantizedTable keep-alive and fully
               validates the envelope before any mapped byte escapes
  drift-drain  drift-window and shadow-mirror bookkeeping stays off the
               request critical path: PredictionService::Submit / Predict in
               src/serve/service.cc may not touch the drift monitor or the
               shadow machinery — histogram/window math runs only when a
               worker drains a batch (DESIGN.md §16)
  layering     the include graph respects the layer DAG declared in
               tools/layering.py (no up-layer includes, no same-layer
               directory cycles)
  plan-trace   src/plan/ observes the autograd tape only through the trace
               hook: no #include "autograd/..." except autograd/trace_hook.h.
               The compiled-plan layer replays tmath kernels from a static
               program; reaching into tape internals (variable.h, ops.h,
               grad_mode.h) would silently re-couple the VM to the
               interpreter it exists to bypass

Usage:
  tools/lint.py                 # run all text lints on src/ and tools/
  tools/lint.py --clang-tidy    # additionally run clang-tidy on src/**/*.cc
                                # (requires a compile_commands.json; pass
                                # --build-dir, default build/release)

Exits non-zero if any finding is reported.
"""

import argparse
import re
import shutil
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC = REPO_ROOT / "src"

findings = []


def report(path, line, rule, message):
    findings.append(f"{path.relative_to(REPO_ROOT)}:{line}: [{rule}] {message}")


def expected_guard(header: Path) -> str:
    rel = header.relative_to(SRC)
    token = re.sub(r"[^A-Za-z0-9]", "_", str(rel)).upper()
    return f"ARMNET_{token}_"


def check_header_guards():
    for header in sorted(SRC.rglob("*.h")):
        guard = expected_guard(header)
        text = header.read_text()
        lines = text.splitlines()
        if f"#ifndef {guard}" not in text:
            report(header, 1, "guard", f"missing '#ifndef {guard}'")
            continue
        if f"#define {guard}" not in text:
            report(header, 1, "guard", f"missing '#define {guard}'")
        endif_re = re.compile(rf"#endif\s*//\s*{guard}\s*$")
        if not any(endif_re.search(line) for line in lines):
            report(header, len(lines), "guard",
                   f"missing closing '#endif  // {guard}'")


ASSERT_RE = re.compile(r"(?<![\w.])assert\s*\(")
ABORT_RE = re.compile(r"(?<![\w:.])abort\s*\(")
STDOUT_RE = re.compile(r"std::cout|(?<![\w.])printf\s*\(|(?<![\w.])puts\s*\(")


def strip_comments(line: str) -> str:
    # Good enough for lint purposes: drop // comments (string literals in this
    # codebase do not contain '//').
    return line.split("//", 1)[0]


def check_source_rules():
    check_h = SRC / "util" / "check.h"
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            line = strip_comments(raw)
            if "static_assert" in line:
                line = line.replace("static_assert", "")
            if path != check_h:
                if ASSERT_RE.search(line):
                    report(path, lineno, "raw-abort",
                           "raw assert(); use ARMNET_CHECK/ARMNET_DCHECK")
                if ABORT_RE.search(line):
                    report(path, lineno, "raw-abort",
                           "raw abort(); use ARMNET_CHECK (it aborts with "
                           "context)")
            if STDOUT_RE.search(line):
                report(path, lineno, "stdout",
                       "stdout output in library code; return armnet::Status "
                       "or stream onto a CHECK instead")


# Function-definition opener in the dispatch layer: a kernel returns void or
# float and is defined at namespace scope.
KERNEL_DEF_RE = re.compile(r"^(?:void|float)\s+(\w+)\s*\(")


def check_kernel_preconditions():
    path = SRC / "tensor" / "kernels.cc"
    lines = path.read_text().splitlines()
    # Collect (name, start_line, body_text) for each top-level definition.
    defs = []
    for i, line in enumerate(lines):
        m = KERNEL_DEF_RE.match(line)
        if m:
            defs.append((m.group(1), i))
    for idx, (name, start) in enumerate(defs):
        end = defs[idx + 1][1] if idx + 1 < len(defs) else len(lines)
        body = "\n".join(lines[start:end])
        if "ARMNET_DCHECK" not in body and "ARMNET_KERNEL_PRECONDITIONS" not in body:
            report(path, start + 1, "kernel-pre",
                   f"kernel dispatcher '{name}' has no ARMNET_DCHECK on its "
                   "pointer/size preconditions")


# Files allowed to construct std::ofstream directly: the durable writers
# themselves. Everything else must serialize through them so every artifact
# gets stream-state checking (and, for state files, CRC + atomic rename).
OFSTREAM_RE = re.compile(r"std::ofstream")
OFSTREAM_ALLOWLIST = {
    Path("nn") / "serialize.cc",   # atomic CRC-framed state writer
    Path("data") / "loader.cc",    # checked SaveLibsvm / quarantine sink
    Path("util") / "csv.cc",       # checked WriteLines helper
}


def check_raw_ofstream():
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        if path.relative_to(SRC) in OFSTREAM_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            if OFSTREAM_RE.search(strip_comments(raw)):
                report(path, lineno, "raw-ofstream",
                       "direct std::ofstream outside the durable writers; "
                       "persist state via nn::StateWriter (atomic + CRC) or "
                       "text via util/csv.h WriteLines")


# Ad-hoc std::chrono timing in library code bypasses the observability layer:
# it picks its own clock (often the non-monotonic system_clock), and its
# measurements never reach the profiler registry or BENCH_*.json. Timing
# belongs in Stopwatch (the one steady_clock wrapper) or behind
# ARMNET_PROFILE_SCOPE; only the timing primitives themselves may name the
# clock.
CHRONO_RE = re.compile(r"(?<![\w:])std::chrono|#include\s*<chrono>")
CHRONO_ALLOWLIST = {
    Path("util") / "stopwatch.h",  # the steady-clock wrapper itself
    Path("util") / "profiler.h",   # scoped-timer instrumentation layer
    Path("util") / "profiler.cc",
    Path("util") / "sync.cc",      # CondVar::WaitFor's timed wait
}


def check_raw_chrono():
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        if path.relative_to(SRC) in CHRONO_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            if CHRONO_RE.search(strip_comments(raw)):
                report(path, lineno, "raw-chrono",
                       "direct std::chrono outside the timing primitives; "
                       "use util/stopwatch.h Stopwatch or "
                       "ARMNET_PROFILE_SCOPE (util/profiler.h)")


# The plan layer's only window into autograd is the trace hook: the tracer
# installs a ScopedTraceSink and observes ops as the interpreter runs them.
# Everything else in src/plan/ works on captured Tensors and tmath kernels.
PLAN_TRACE_ALLOWED_INCLUDE = "autograd/trace_hook.h"
PLAN_AUTOGRAD_INCLUDE_RE = re.compile(r'#include\s+"(autograd/[^"]+)"')


def check_plan_trace_isolation():
    for path in sorted(list((SRC / "plan").rglob("*.h")) +
                       list((SRC / "plan").rglob("*.cc"))):
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            m = PLAN_AUTOGRAD_INCLUDE_RE.search(strip_comments(raw))
            if m and m.group(1) != PLAN_TRACE_ALLOWED_INCLUDE:
                report(path, lineno, "plan-trace",
                       f"src/plan/ includes '{m.group(1)}'; the plan layer "
                       "may only see autograd through "
                       f"{PLAN_TRACE_ALLOWED_INCLUDE}")


# Evaluation-only subsystems: every model Forward they issue must run under
# an established NoGradGuard (tape-free serving, DESIGN.md §9) — or, in the
# plan tracer, a ScopedTraceSink, which forces grad mode off for its
# lifetime (autograd/trace_hook.h). The trainer is the one legitimate taped
# Forward caller in scope.
NOGRAD_DIRS = ("armor", "interpret", "serve", "plan")
NOGRAD_ALLOWLIST = {
    Path("armor") / "trainer.cc",  # training step differentiates via Forward
}
FORWARD_CALL_RE = re.compile(r"[.>]\s*Forward(WithTrace)?\s*\(")
# Top-level function definitions start at column 0 in this codebase; a new
# definition resets the "guard established" state so each evaluation entry
# point needs its own NoGradGuard.
FUNC_START_RE = re.compile(r"^[A-Za-z_](?!amespace\b).*\(")


def check_nograd_eval():
    for d in NOGRAD_DIRS:
        for path in sorted((SRC / d).glob("*.cc")):
            if path.relative_to(SRC) in NOGRAD_ALLOWLIST:
                continue
            guard_established = False
            for lineno, raw in enumerate(path.read_text().splitlines(),
                                         start=1):
                line = strip_comments(raw)
                if FUNC_START_RE.match(line):
                    guard_established = False
                if "NoGradGuard" in line or "ScopedTraceSink" in line:
                    guard_established = True
                if FORWARD_CALL_RE.search(line) and not guard_established:
                    report(path, lineno, "nograd-eval",
                           "model Forward without an established NoGradGuard;"
                           " evaluation paths must be tape-free (see "
                           "autograd/grad_mode.h)")


# The drift monitor's sliding windows and the shadow evaluator live behind
# mutexes and do real math (bucket rotation, PSI); putting them on the
# submit path would tax every caller and contend the very threads the
# sharded-counter scheme was built to decouple. Updates and alert
# evaluation belong to the drain path (ProcessBatch), so the request
# critical path — Submit and the blocking Predict convenience — may not
# name the drift/shadow machinery at all.
DRIFT_HOT_FUNC_RE = re.compile(r"PredictionService::(Submit|Predict)\s*\(")
DRIFT_MACHINERY_RE = re.compile(
    r"\bdrift_\b|\bshadow_eval_\b|\bObserveDrift\s*\(|"
    r"\bHandleDriftEvents\s*\(|\bMirrorToShadow\s*\(")


def check_drift_drain():
    path = SRC / "serve" / "service.cc"
    in_hot_path = False
    for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
        line = strip_comments(raw)
        if FUNC_START_RE.match(line):
            in_hot_path = bool(DRIFT_HOT_FUNC_RE.search(line))
        if in_hot_path and DRIFT_MACHINERY_RE.search(line):
            report(path, lineno, "drift-drain",
                   "drift/shadow machinery on the request critical path; "
                   "window updates and mirroring run only on the worker "
                   "drain path (DESIGN.md §16)")


# Raw standard-library synchronization primitives are invisible to Clang's
# thread-safety analysis: a std::lock_guard on a std::mutex carries no
# capability, so guarded state can be touched with no lock held and the
# analysis stays silent. All locking in src/ goes through the annotated
# facade (armnet::Mutex / MutexLock / CondVar in util/sync.h) so every
# critical section is visible to -Wthread-safety. Only the facade itself may
# name the std primitives it wraps.
RAW_SYNC_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|lock_guard|"
    r"unique_lock|scoped_lock|shared_lock|condition_variable(_any)?)\b"
    r"|#include\s*<(mutex|condition_variable|shared_mutex)>")
SYNC_ALLOWLIST = {
    Path("util") / "sync.h",   # the annotated facade itself
    Path("util") / "sync.cc",  # CondVar's adopt-lock bridge to std::mutex
}


def check_mutex_facade():
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        if path.relative_to(SRC) in SYNC_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            if RAW_SYNC_RE.search(strip_comments(raw)):
                report(path, lineno, "mutex-facade",
                       "raw standard-library synchronization primitive; use "
                       "armnet::Mutex/MutexLock/CondVar from util/sync.h so "
                       "thread-safety analysis sees the lock (DESIGN.md §12)")


# Escapes from thread-safety analysis follow the same empty-by-default policy
# as sanitizer suppressions: each one outside the facade header needs a
# justification comment directly above it explaining why the analysis cannot
# see the invariant that makes the code safe.
TS_ESCAPE = "ARMNET_NO_THREAD_SAFETY_ANALYSIS"


def check_ts_escapes():
    sync_h = SRC / "util" / "sync.h"
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        if path == sync_h:
            continue
        lines = path.read_text().splitlines()
        for lineno, raw in enumerate(lines, start=1):
            if TS_ESCAPE not in strip_comments(raw):
                continue
            prev = lines[lineno - 2].strip() if lineno >= 2 else ""
            justified = prev.startswith("//") and prev.strip("/ ").strip()
            if not justified:
                report(path, lineno, "ts-escape",
                       f"{TS_ESCAPE} without a justification comment "
                       "directly above it (empty-by-default policy, "
                       "DESIGN.md §12)")


# Memory mapping is confined to the embedding-store TU: MappedFile there
# owns the munmap lifetime (kept alive by the QuantizedTable handle, so a
# compiled plan can co-own the mapping) and validates the whole envelope
# before any mapped byte escapes. A raw mmap anywhere else would create an
# unmanaged mapping lifetime outside that contract.
MMAP_RE = re.compile(r"(?<![\w:.])(mmap|munmap)\s*\(|#include\s*<sys/mman\.h>")
MMAP_ALLOWLIST = {
    Path("nn") / "embedding_store.cc",  # MappedFile + envelope validation
}


def check_mmap_isolation():
    for path in sorted(list(SRC.rglob("*.h")) + list(SRC.rglob("*.cc"))):
        if path.relative_to(SRC) in MMAP_ALLOWLIST:
            continue
        for lineno, raw in enumerate(path.read_text().splitlines(), start=1):
            if MMAP_RE.search(strip_comments(raw)):
                report(path, lineno, "mmap-isolation",
                       "raw mmap/munmap outside nn/embedding_store.cc; open "
                       "mapped weights through OpenMappedEmbeddingStore so "
                       "the mapping lifetime and validation stay owned")


def check_layering():
    import layering
    findings.extend(layering.check_files(layering.load_repo_files()))


def check_suppression_policy():
    supp_dir = REPO_ROOT / "tools" / "sanitizers"
    for supp in sorted(supp_dir.glob("*.supp")):
        lines = supp.read_text().splitlines()
        prev_commented = False
        for lineno, line in enumerate(lines, start=1):
            stripped = line.strip()
            if not stripped:
                prev_commented = False
                continue
            if stripped.startswith("#"):
                prev_commented = True
                continue
            # Entry line: must sit directly under an explanatory comment (or
            # under another entry of the same commented block).
            if not prev_commented:
                report(supp, lineno, "supp-policy",
                       "suppression entry without an explanatory comment "
                       "directly above it (see tools/sanitizers/README.md)")
            # Stay "commented" for multi-entry blocks under one comment.


def run_clang_tidy(build_dir: Path) -> int:
    tidy = shutil.which("clang-tidy")
    if tidy is None:
        print("lint.py: clang-tidy not found on PATH; skipping "
              "(the CI lint job runs it)", file=sys.stderr)
        return 0
    compdb = build_dir / "compile_commands.json"
    if not compdb.exists():
        print(f"lint.py: {compdb} not found; configure with "
              "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON first", file=sys.stderr)
        return 1
    sources = [str(p) for p in sorted(SRC.rglob("*.cc"))]
    proc = subprocess.run([tidy, "-p", str(build_dir), "--quiet"] + sources)
    return proc.returncode


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--clang-tidy", action="store_true",
                        help="also run clang-tidy over src/**/*.cc")
    parser.add_argument("--build-dir", type=Path,
                        default=REPO_ROOT / "build" / "release",
                        help="build dir holding compile_commands.json")
    args = parser.parse_args()

    check_header_guards()
    check_source_rules()
    check_kernel_preconditions()
    check_raw_ofstream()
    check_raw_chrono()
    check_nograd_eval()
    check_drift_drain()
    check_plan_trace_isolation()
    check_mutex_facade()
    check_mmap_isolation()
    check_ts_escapes()
    check_layering()
    check_suppression_policy()

    for finding in findings:
        print(finding)
    status = 1 if findings else 0

    if args.clang_tidy:
        status = max(status, run_clang_tidy(args.build_dir))

    if status == 0:
        print("lint.py: clean")
    return status


if __name__ == "__main__":
    sys.exit(main())
